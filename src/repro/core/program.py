"""Translated programs: closing the §III loop from source to simulation.

The paper's workflow is *source → translator → compile → run*.  This
module replays a :class:`~repro.core.translator.TranslationReport`
inside the simulator: each translated variable is allocated at the
exact fixed window address the translator's ``mmap(MAP_FIXED)``
statement names (under CCSM the same program runs untranslated, so the
buffers fall back to the heap), and a caller-supplied trace builder
describes what the program does with them.

Example::

    report = SourceTranslator().translate_source(VECADD_CU)

    def phases(ctx, buffers):
        produce = CpuPhase("produce", [...stores into buffers["a"]...])
        kernel = KernelLaunch("vecadd", [...])
        return [produce, kernel]

    workload = TranslatedWorkload(report, phases)
    result = IntegratedSystem(config, mode).run(workload)

See ``examples/end_to_end_translation.py`` for the complete flow.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.translator import TranslationReport
from repro.workloads.base import BuildContext, Workload

#: builds the program's phases given the final buffer base addresses
PhaseBuilder = Callable[[BuildContext, Dict[str, int]], List[object]]


class TranslatedWorkload(Workload):
    """A workload whose buffers come from a translation report."""

    code = "TR"
    name = "translated-program"

    def __init__(self, report: TranslationReport,
                 phase_builder: PhaseBuilder,
                 input_size: str = "small") -> None:
        super().__init__(input_size)
        if report.unresolved:
            raise ValueError(
                "cannot replay a translation with unresolved kernel "
                f"arguments: {', '.join(report.unresolved)}")
        if not report.allocations:
            raise ValueError("the translation rewrote no allocations")
        self.report = report
        self._phase_builder = phase_builder
        #: variable name -> base VA, filled in by :meth:`build`
        self.buffers: Dict[str, int] = {}

    def build(self, ctx: BuildContext) -> List[object]:
        self.buffers = {}
        for allocation in self.report.allocations:
            if ctx.alloc_at is not None:
                base = ctx.alloc_at(allocation.name,
                                    allocation.window_address,
                                    allocation.size_bytes)
            else:
                base = ctx.alloc(allocation.name, allocation.size_bytes,
                                 True)
            self.buffers[allocation.name] = base
        phases = self._phase_builder(ctx, dict(self.buffers))
        if not phases:
            raise ValueError("the phase builder produced no phases")
        return phases
