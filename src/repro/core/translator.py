"""The automatic source-to-source translator (paper §III-C).

The translator converts an existing no-memcpy CUDA program into a
direct-store program, exactly following the paper's recipe:

1. scan every kernel invocation matching
   ``kernel_name<<<Dg, Db[, Ns[, S]]>>>(x1, x2, ..., xn)`` and capture
   the variable names passed to kernels;
2. scan the sources for the memory declarations of those variables —
   ``malloc`` and ``cudaMalloc`` calls — and determine each variable's
   allocation size (evaluating ``sizeof`` and ``#define`` constants);
3. rewrite each declaration into an ``mmap`` at a fixed high-order
   virtual address (``MAP_FIXED``), bumping the next start address by
   the (page-aligned) size so no two variables overlap;
4. emit the modified sources, ready to compile "in the standard way".

The translator operates on source *text* (it does not need a C
compiler); it understands the declaration idioms the paper's benchmark
suites use.  Its output — the per-variable window addresses — is also
what drives the simulator's direct-store allocation, so the translator
can be exercised end to end.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.bitops import align_up
from repro.vm.mmap import DIRECT_STORE_WINDOW_BASE
from repro.vm.pagetable import PAGE_SIZE


class TranslationError(ValueError):
    """The translator could not understand or rewrite a construct."""


#: sizeof() values for the C types the benchmark suites use
_SIZEOF = {
    "char": 1, "unsigned char": 1, "bool": 1,
    "short": 2, "unsigned short": 2,
    "int": 4, "unsigned int": 4, "unsigned": 4, "float": 4,
    "long": 8, "unsigned long": 8, "long long": 8, "double": 8,
    "size_t": 8, "void *": 8, "void*": 8,
    "float2": 8, "int2": 8, "float4": 16, "int4": 16,
}

#: kernel<<<...>>>(args)
_KERNEL_CALL_RE = re.compile(
    r"(?P<name>[A-Za-z_]\w*)\s*<<<(?P<launch>[^>]*)>>>\s*"
    r"\((?P<args>[^;]*?)\)\s*;",
    re.DOTALL)

#: var = (cast) malloc(size);   |   var = malloc(size);
_MALLOC_RE = re.compile(
    r"(?P<lhs>[A-Za-z_]\w*)\s*=\s*(?P<cast>\([^)]*\)\s*)?"
    r"malloc\s*\((?P<size>[^;]*)\)\s*;")

#: cudaMalloc(&var, size);  |  cudaMalloc((void**)&var, size);
_CUDAMALLOC_RE = re.compile(
    r"cudaMalloc\s*\(\s*(?:\([^)]*\)\s*)?&\s*(?P<lhs>[A-Za-z_]\w*)\s*,"
    r"\s*(?P<size>[^;]*)\)\s*;")

#: #define NAME value
_DEFINE_RE = re.compile(
    r"^\s*#\s*define\s+(?P<name>[A-Za-z_]\w*)\s+(?P<value>[^\s/]+)",
    re.MULTILINE)

#: const int N = 123;   |   int N = 123;  (constant initialisers only)
_CONST_RE = re.compile(
    r"^\s*(?:static\s+)?(?:const\s+)?(?:unsigned\s+)?(?:int|long|size_t)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*=\s*(?P<value>[0-9][0-9a-fA-Fx]*)\s*;",
    re.MULTILINE)


@dataclass
class VariableAllocation:
    """One kernel-argument variable's rewritten allocation."""

    name: str
    size_bytes: int
    window_address: int
    source_file: str
    original_statement: str
    rewritten_statement: str
    allocator: str  # "malloc" or "cudaMalloc"


@dataclass
class TranslationReport:
    """Everything the translator found and changed."""

    kernel_calls: List[Tuple[str, Tuple[str, ...]]] = field(
        default_factory=list)
    kernel_arguments: List[str] = field(default_factory=list)
    allocations: List[VariableAllocation] = field(default_factory=list)
    translated_sources: Dict[str, str] = field(default_factory=dict)
    #: kernel arguments for which no malloc/cudaMalloc was found
    unresolved: List[str] = field(default_factory=list)

    def window_layout(self) -> Dict[str, Tuple[int, int]]:
        """``{variable: (window_address, size_bytes)}``."""
        return {alloc.name: (alloc.window_address, alloc.size_bytes)
                for alloc in self.allocations}


class SourceTranslator:
    """Translates CUDA-C-like sources to direct-store allocation."""

    def __init__(self,
                 window_base: int = DIRECT_STORE_WINDOW_BASE) -> None:
        self.window_base = window_base

    # ------------------------------------------------------------------

    def translate(self, sources: Dict[str, str]) -> TranslationReport:
        """Translate a program given as ``{filename: source_text}``."""
        report = TranslationReport()
        constants = self._collect_constants(sources)

        # pass 1: every kernel invocation, in file order (§III-C: "all
        # variable inferences in CUDA kernel invocations are scanned")
        seen_args: List[str] = []
        for filename in sorted(sources):
            for match in _KERNEL_CALL_RE.finditer(sources[filename]):
                args = tuple(
                    arg for arg in
                    (a.strip().lstrip("&") for a in
                     match.group("args").split(","))
                    if re.fullmatch(r"[A-Za-z_]\w*", arg))
                report.kernel_calls.append((match.group("name"), args))
                for arg in args:
                    if arg not in seen_args:
                        seen_args.append(arg)
        report.kernel_arguments = seen_args

        # pass 2+3: find and rewrite the declarations
        next_address = self.window_base
        resolved = set()
        translated = dict(sources)
        for filename in sorted(sources):
            text = translated[filename]
            for pattern, allocator in ((_MALLOC_RE, "malloc"),
                                       (_CUDAMALLOC_RE, "cudaMalloc")):
                text = self._rewrite_all(
                    text, pattern, allocator, filename, seen_args,
                    constants, resolved, report,
                    lambda: next_address)
                # the rewrite helper advanced addresses through `report`;
                # recompute the cursor from what it emitted
                if report.allocations:
                    last = report.allocations[-1]
                    next_address = max(
                        next_address,
                        last.window_address
                        + align_up(last.size_bytes, PAGE_SIZE))
            translated[filename] = text
        report.translated_sources = translated
        report.unresolved = [arg for arg in seen_args
                             if arg not in resolved]
        return report

    def translate_source(self, source: str,
                         filename: str = "main.cu") -> TranslationReport:
        """Convenience wrapper for single-file programs."""
        return self.translate({filename: source})

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _rewrite_all(self, text: str, pattern: re.Pattern, allocator: str,
                     filename: str, kernel_args: List[str],
                     constants: Dict[str, int], resolved: set,
                     report: TranslationReport, cursor) -> str:
        """Rewrite every match of *pattern* whose LHS is a kernel arg."""
        out: List[str] = []
        last_end = 0
        next_address = cursor()
        for match in pattern.finditer(text):
            name = match.group("lhs")
            if name not in kernel_args or name in resolved:
                continue
            size_expr = match.group("size").strip()
            size_bytes = self._eval_size(size_expr, constants)
            statement = match.group(0)
            rewritten = (
                f"{name} = mmap((void *){next_address:#x}, {size_expr}, "
                f"PROT_READ | PROT_WRITE, "
                f"MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);")
            report.allocations.append(VariableAllocation(
                name=name, size_bytes=size_bytes,
                window_address=next_address, source_file=filename,
                original_statement=statement,
                rewritten_statement=rewritten, allocator=allocator))
            resolved.add(name)
            out.append(text[last_end:match.start()])
            out.append(rewritten)
            last_end = match.end()
            next_address += align_up(size_bytes, PAGE_SIZE)
        out.append(text[last_end:])
        return "".join(out)

    def _collect_constants(self,
                           sources: Dict[str, str]) -> Dict[str, int]:
        """Gather #define and const-int values usable in size expressions."""
        constants: Dict[str, int] = {}
        for text in sources.values():
            for match in _DEFINE_RE.finditer(text):
                value = self._try_int(match.group("value"))
                if value is not None:
                    constants[match.group("name")] = value
            for match in _CONST_RE.finditer(text):
                value = self._try_int(match.group("value"))
                if value is not None:
                    constants[match.group("name")] = value
        return constants

    @staticmethod
    def _try_int(token: str) -> Optional[int]:
        token = token.strip().rstrip("uUlL")
        try:
            return int(token, 0)
        except ValueError:
            return None

    def _eval_size(self, expression: str,
                   constants: Dict[str, int]) -> int:
        """Evaluate a C allocation-size expression to bytes.

        Supports integer literals, ``sizeof(type)``, named constants,
        ``+ - * / ( )``, matching what the benchmark suites write.
        """
        text = expression
        # sizeof(type) -> literal
        def _sizeof(match: re.Match) -> str:
            type_name = " ".join(match.group(1).split()).rstrip(" *")
            if match.group(1).strip().endswith("*"):
                return "8"
            if type_name in _SIZEOF:
                return str(_SIZEOF[type_name])
            raise TranslationError(
                f"unknown type in sizeof: {match.group(1)!r}")

        text = re.sub(r"sizeof\s*\(\s*([^)]+?)\s*\)", _sizeof, text)
        # named constants -> literals
        def _name(match: re.Match) -> str:
            name = match.group(0)
            if name in constants:
                return str(constants[name])
            raise TranslationError(
                f"cannot determine size: unknown symbol {name!r} "
                f"in {expression!r}")

        text = re.sub(r"[A-Za-z_]\w*", _name, text)
        try:
            node = ast.parse(text, mode="eval")
        except SyntaxError as error:
            raise TranslationError(
                f"unparseable size expression {expression!r}") from error
        value = self._eval_node(node.body, expression)
        if value <= 0:
            raise TranslationError(
                f"non-positive size {value} from {expression!r}")
        return int(value)

    def _eval_node(self, node: ast.AST, origin: str) -> int:
        """Arithmetic-only AST evaluation (no names, no calls)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div,
                          ast.FloorDiv, ast.Mod)):
            left = self._eval_node(node.left, origin)
            right = self._eval_node(node.right, origin)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Mod):
                return left % right
            return left // right
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._eval_node(node.operand, origin)
        raise TranslationError(
            f"unsupported construct in size expression {origin!r}")
