"""Coherence operating modes."""

from __future__ import annotations

from enum import Enum


class CoherenceMode(Enum):
    """How CPU-GPU shared data is kept coherent.

    * ``CCSM`` — the paper's baseline: pull-based cache-coherent shared
      memory over the Hammer protocol.  The TLB detector is ignored and
      nothing is forwarded.
    * ``DIRECT_STORE`` — the paper's main configuration: direct store
      co-existing with CCSM.  Every GPU-accessed buffer is homed on the
      GPU (the translator's behaviour); everything else stays coherent.
    * ``DS_ONLY`` — §III-H's standalone replacement: direct store *is*
      the CPU-GPU communication mechanism and the broadcast machinery is
      switched off entirely (no probes; misses fetch from memory).
    * ``HYBRID`` — §III-H's per-variable split: only *large* GPU-accessed
      buffers are homed on the GPU; small ones use CCSM.
    """

    CCSM = "ccsm"
    DIRECT_STORE = "direct_store"
    DS_ONLY = "ds_only"
    HYBRID = "hybrid"

    @property
    def forwarding_enabled(self) -> bool:
        """Does the CPU forward window stores over the dedicated network?"""
        return self is not CoherenceMode.CCSM

    @property
    def broadcast_enabled(self) -> bool:
        """Is the Hammer broadcast fabric active?"""
        return self is not CoherenceMode.DS_ONLY
