"""System configuration — Table I of the paper, as a dataclass.

Every knob the evaluation sweeps (GPU L2 size, network latency, SM
count, …) lives here so that benchmarks and ablations configure runs
declaratively.  Timing parameters the paper does not list (CPU
frequency, per-level latencies) use values typical of the gem5-gpu era
and are called out in DESIGN.md; since every experiment is a
DS-vs-CCSM *ratio* on the same configuration, their absolute values
shift both sides together.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mem.dram import DramConfig


@dataclass
class CpuConfig:
    """Table I, CPU section: 1 core, 64KB/2w L1D, 32KB/2w L1I, 2MB/8w L2."""

    frequency_hz: float = 3.0e9
    l1d_size: int = 64 * 1024
    l1d_ways: int = 2
    l1d_latency_cycles: int = 2
    l1i_size: int = 32 * 1024
    l1i_ways: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_ways: int = 8
    l2_latency_cycles: int = 12
    store_buffer_entries: int = 64
    max_outstanding_drains: int = 16
    num_mshrs: int = 32
    tlb_entries: int = 64
    tlb_walk_cycles: int = 20


@dataclass
class GpuConfig:
    """Table I, GPU section: 16 SMs @ 1.4 GHz, 16KB/4w L1, 2MB/16w/4-slice L2."""

    num_sms: int = 16
    lanes_per_sm: int = 32
    frequency_hz: float = 1.4e9
    l1_size: int = 16 * 1024
    l1_ways: int = 4
    l1_latency_cycles: int = 28
    shared_mem_size: int = 48 * 1024
    shmem_latency_cycles: int = 2
    l2_size: int = 2 * 1024 * 1024
    l2_ways: int = 16
    l2_slices: int = 4
    l2_latency_cycles: int = 30
    #: GPU L2 replacement: Fermi-class L2s are not true LRU; seeded
    #: random matches their measured behaviour and avoids pathological
    #: frontier-chasing eviction on streaming kernels
    l2_replacement: str = "random"
    mshrs_per_slice: int = 32
    tlb_entries: int = 128
    tlb_walk_cycles: int = 20
    #: next-line prefetch degree into the L2 (0 = off); the pull-based
    #: baseline the paper compares direct store against
    prefetch_degree: int = 0


@dataclass
class NetworkConfig:
    """Coherence crossbar and the dedicated direct-store network.

    The paper specifies the added network has "exactly the same
    characteristics" as the coherence network, so both default to the
    same hop latency and width; the ablation bench sweeps
    ``ds_latency_cycles`` separately.
    """

    hop_latency_cycles: int = 8
    bytes_per_cycle: int = 64
    ds_latency_cycles: int = 8
    ds_bytes_per_cycle: int = 64
    memctrl_latency_cycles: int = 4


@dataclass
class SystemConfig:
    """The full Table I machine plus simulation options."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    gpu: GpuConfig = field(default_factory=GpuConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    line_size: int = 128
    #: carry data payloads end to end (the correctness oracle); turn off
    #: for large benchmark sweeps
    track_values: bool = True
    #: HYBRID mode: GPU-accessed buffers at least this large are homed
    #: on the GPU (§III-H suggests homing "large variables")
    hybrid_threshold_bytes: int = 64 * 1024
    #: replacement policy for every cache
    replacement: str = "lru"
    #: safety net for runaway simulations
    max_events: int = 200_000_000

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable configuration dump (the Table I bench prints it)."""
        gpu, cpu = self.gpu, self.cpu
        lines = [
            "CPU",
            "  Cores      1",
            f"  L1D cache  {cpu.l1d_size // 1024}KB, {cpu.l1d_ways} ways",
            f"  L1I cache  {cpu.l1i_size // 1024}KB, {cpu.l1i_ways} ways",
            f"  L2 cache   {cpu.l2_size // (1024 * 1024)}MB, {cpu.l2_ways} ways",
            "GPU",
            f"  SMs        {gpu.num_sms} - {gpu.lanes_per_sm} lanes per SM "
            f"@ {gpu.frequency_hz / 1e9:.1f}Ghz",
            f"  L1 cache   {gpu.l1_size // 1024}KB + "
            f"{gpu.shared_mem_size // 1024}KB shared memory, {gpu.l1_ways} ways",
            f"  L2 cache   {gpu.l2_size // (1024 * 1024)}MB, {gpu.l2_ways} ways, "
            f"{gpu.l2_slices} slices",
            "MEMORY",
            f"  Memory     {self.dram.size_bytes // 1024 ** 3}GB, "
            f"{self.dram.num_channels} channel, "
            f"{self.dram.ranks_per_channel} ranks, "
            f"{self.dram.banks_per_rank} banks @ "
            f"{self.dram.frequency_hz / 1e9:.0f}GHz",
            f"  Line size  {self.line_size} bytes",
        ]
        return "\n".join(lines)
