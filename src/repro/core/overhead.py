"""Hardware-overhead accounting (paper §IV-E).

"To apply direct store in integrated CPU-GPU systems, a small hardware
overhead is incurred ... We add a network that directly connects the
CPU's L1 cache and GPU L2 cache and a logic in the TLB to detect the
incoming remotely stored data ... The logic works by comparing store
instructions' high-order addresses to the baseline address. This small
overhead can be done by wiring to a logic gate."

This module quantifies that claim for a configured system: the width of
the TLB comparator, the wire/buffer cost of the dedicated network, and
the two protocol-table rows the extension adds — alongside the sizes of
the structures direct store does *not* need (a directory, new cache
state bits), to make the "simpler than CCSM" argument concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.coherence.protocol_table import PROTOCOL_TABLE, ProtocolEvent
from repro.utils.bitops import log2_exact
from repro.vm.mmap import DIRECT_STORE_WINDOW_BASE, DIRECT_STORE_WINDOW_SIZE

#: simulated virtual-address width
VA_BITS = 48


@dataclass(frozen=True)
class OverheadReport:
    """The added hardware, itemised."""

    #: bits the TLB comparator must match (the window's high-order bits)
    tlb_comparator_bits: int
    #: dedicated network links (one per GPU L2 slice)
    ds_network_links: int
    #: per-link width in wires (data bits per cycle)
    ds_link_wires: int
    #: protocol-table rows added by the extension
    added_protocol_transitions: int
    #: protocol-table rows in the unmodified Hammer baseline
    baseline_protocol_transitions: int
    #: new stable states required (the extension reuses MM and I)
    added_stable_states: int

    def summary(self) -> str:
        return (
            f"TLB detector        : one {self.tlb_comparator_bits}-bit "
            f"comparator on store VAs (\"wiring to a logic gate\")\n"
            f"Dedicated network   : {self.ds_network_links} point-to-point "
            f"links, {self.ds_link_wires} data wires each\n"
            f"Protocol additions  : {self.added_protocol_transitions} "
            f"transitions over the baseline "
            f"{self.baseline_protocol_transitions}; "
            f"{self.added_stable_states} new stable states\n"
            f"Directory storage   : none (Hammer is broadcast; direct "
            f"store adds no tracking state)")


def compute_overhead(config: SystemConfig) -> OverheadReport:
    """Itemise the direct-store hardware cost for *config*."""
    # The detector matches every VA bit above the window size: with a
    # 256 GiB window at a fixed base, the comparator covers
    # VA_BITS - log2(window) bits.
    window_bits = log2_exact(DIRECT_STORE_WINDOW_SIZE)
    comparator_bits = VA_BITS - window_bits
    # sanity: the base must be representable by those bits alone
    assert DIRECT_STORE_WINDOW_BASE % DIRECT_STORE_WINDOW_SIZE == 0

    ds_events = (ProtocolEvent.REMOTE_STORE_LOCAL,
                 ProtocolEvent.REMOTE_STORE_ARRIVE)
    added = sum(1 for (_state, event) in PROTOCOL_TABLE
                if event in ds_events)
    baseline = len(PROTOCOL_TABLE) - added

    return OverheadReport(
        tlb_comparator_bits=comparator_bits,
        ds_network_links=config.gpu.l2_slices,
        ds_link_wires=config.network.ds_bytes_per_cycle * 8,
        added_protocol_transitions=added,
        baseline_protocol_transitions=baseline,
        added_stable_states=0,
    )
