"""The direct-store allocation policy and bookkeeping unit.

§III-C: the translator homes on the GPU every variable that appears as a
CUDA kernel argument.  §III-H adds two refinements: standalone mode
(everything shared is homed, CCSM removed) and hybrid mode (only large
variables are homed).  :func:`should_home_on_gpu` is that policy;
:class:`DirectStoreUnit` applies it at allocation time and maintains the
region registry the rest of the system consults.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.protocol_mode import CoherenceMode
from repro.core.regions import DirectStoreRegionRegistry
from repro.utils.statistics import StatsRegistry
from repro.vm.mmap import MmapAllocator, Region
from repro.vm.pagetable import PageTable


def should_home_on_gpu(mode: CoherenceMode, gpu_accessed: bool,
                       size_bytes: int, hybrid_threshold: int) -> bool:
    """Decide whether a buffer is homed on the GPU (allocated in the window).

    Args:
        mode: the system's coherence mode.
        gpu_accessed: the buffer appears as a kernel argument (what the
            translator detects by scanning ``kernel<<<...>>>(args)``).
        size_bytes: requested allocation size.
        hybrid_threshold: HYBRID mode's minimum size for homing.
    """
    if not gpu_accessed:
        return False
    if mode is CoherenceMode.CCSM:
        return False
    if mode is CoherenceMode.HYBRID:
        return size_bytes >= hybrid_threshold
    return True  # DIRECT_STORE and DS_ONLY home every kernel argument


class DirectStoreUnit:
    """Allocation-time direct-store support.

    Owns the window allocator cursor behaviour (via
    :class:`~repro.vm.mmap.MmapAllocator`), eagerly maps window pages
    (the translator emits ``MAP_FIXED`` mappings of known size up
    front), and records their frames in the registry.
    """

    def __init__(self, mode: CoherenceMode, allocator: MmapAllocator,
                 page_table: PageTable,
                 registry: Optional[DirectStoreRegionRegistry] = None,
                 hybrid_threshold: int = 64 * 1024) -> None:
        self.mode = mode
        self.allocator = allocator
        self.page_table = page_table
        self.registry = registry or DirectStoreRegionRegistry(
            page_table.page_size)
        self.hybrid_threshold = hybrid_threshold
        self.stats = StatsRegistry("dsu")
        self._homed = self.stats.counter("buffers_homed")
        self._heap = self.stats.counter("buffers_heap")

    def allocate(self, name: str, size_bytes: int,
                 gpu_accessed: bool) -> Region:
        """Allocate one program buffer under the current mode's policy."""
        if should_home_on_gpu(self.mode, gpu_accessed, size_bytes,
                              self.hybrid_threshold):
            region = self.allocator.mmap_fixed_direct_store(size_bytes, name)
            pfns = self._map_region(region)
            self.registry.register(region, pfns)
            self._homed.increment()
            return region
        self._heap.increment()
        return self.allocator.malloc(size_bytes, name)

    def allocate_at(self, name: str, window_address: int,
                    size_bytes: int) -> Region:
        """Place a buffer exactly where the translator's ``mmap`` put it.

        Used when replaying a :class:`~repro.core.translator`
        translation: under a forwarding mode the buffer lands at the
        report's fixed window address; under CCSM the same program would
        never have been translated, so it falls back to the heap.
        """
        from repro.vm.mmap import MAP_FIXED
        if not self.mode.forwarding_enabled:
            self._heap.increment()
            return self.allocator.malloc(size_bytes, name)
        region = self.allocator.mmap(size_bytes, addr=window_address,
                                     flags=MAP_FIXED, name=name)
        if not region.direct_store:
            raise ValueError(
                f"{name}: address {window_address:#x} is outside the "
                f"direct-store window")
        pfns = self._map_region(region)
        self.registry.register(region, pfns)
        self._homed.increment()
        return region

    def is_ds_physical_line(self, line_address: int) -> bool:
        """Predicate handed to the coherence engine's CPU agent."""
        return self.registry.is_ds_physical_line(line_address)

    def _map_region(self, region: Region) -> List[int]:
        """Eagerly map every page of a window region; return the PFNs."""
        pfns: List[int] = []
        page_size = self.page_table.page_size
        for page_start in range(region.start, region.end, page_size):
            vpn = self.page_table.vpn(page_start)
            pfn = self.page_table.map_page(vpn)
            pfns.append(pfn)
        return pfns

    @property
    def buffers_homed(self) -> int:
        return self._homed.value
