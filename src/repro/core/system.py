"""The integrated CPU-GPU system: construction and execution.

:class:`IntegratedSystem` wires every substrate together according to a
:class:`~repro.core.config.SystemConfig` and a
:class:`~repro.core.protocol_mode.CoherenceMode`, then runs a workload's
phases back to back on the event queue.  One instance runs one
workload once (caches and statistics are not reusable across runs); the
harness builds a fresh system per data point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.hammer import MEMCTRL, CoherentAgent, HammerSystem
from repro.coherence.port import CoherentPort
from repro.core.config import SystemConfig
from repro.core.direct_store import DirectStoreUnit
from repro.core.metrics import (
    RunResult,
    merge_snapshots,
    snapshot_cache,
)
from repro.core.protocol_mode import CoherenceMode
from repro.cpu.core import CpuCore
from repro.cpu.hierarchy import CpuMemorySubsystem
from repro.engine.clock import ClockDomain
from repro.engine.simulator import Simulator
from repro.gpu.gpu import GpuDevice
from repro.gpu.sm import StreamingMultiprocessor
from repro.interconnect.direct_network import DirectStoreNetwork
from repro.interconnect.network import Crossbar
from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import DramModel
from repro.mem.memimage import MemoryImage
from repro.telemetry import (
    TRACER,
    IntervalSampler,
    Probe,
    TelemetrySettings,
)
from repro.utils.bitops import is_power_of_two, log2_exact
from repro.utils.profiler import PROFILER
from repro.vm.mmap import MmapAllocator
from repro.vm.mmu import MMU
from repro.vm.pagetable import PageTable, PhysicalFrameAllocator
from repro.vm.tlb import TLB
from repro.workloads.base import BuildContext, Workload
from repro.workloads.trace import CpuPhase, KernelLaunch


class IntegratedSystem:
    """One simulated Table I machine under one coherence mode."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 mode: CoherenceMode = CoherenceMode.CCSM,
                 record_gpu_loads: bool = False,
                 telemetry: Optional[TelemetrySettings] = None) -> None:
        self.config = config or SystemConfig()
        self.mode = mode
        self.telemetry = telemetry or TelemetrySettings()
        cfg = self.config

        # --- clocks and engine -----------------------------------------
        self.cpu_clock = ClockDomain("cpu", cfg.cpu.frequency_hz)
        self.gpu_clock = ClockDomain("gpu", cfg.gpu.frequency_hz)
        self.mem_clock = ClockDomain("mem", cfg.dram.frequency_hz)
        self.simulator = Simulator(max_events=cfg.max_events)
        self.queue = self.simulator.queue

        # --- memory and VM ----------------------------------------------
        self.dram = DramModel(cfg.dram)
        self.image = MemoryImage(cfg.line_size) if cfg.track_values else None
        frames = PhysicalFrameAllocator(cfg.dram.size_bytes)
        self.page_table = PageTable(frames)
        self.allocator = MmapAllocator()
        self.dsu = DirectStoreUnit(
            mode, self.allocator, self.page_table,
            hybrid_threshold=cfg.hybrid_threshold_bytes)

        # --- interconnect ------------------------------------------------
        self.slice_names = [f"gpu.l2.slice{i}"
                            for i in range(cfg.gpu.l2_slices)]
        # shift/mask form of slice_for_line for the per-access helpers
        self._line_bits = log2_exact(cfg.line_size)
        if not is_power_of_two(cfg.gpu.l2_slices):
            raise ValueError(
                f"slice count must be a power of two: {cfg.gpu.l2_slices}")
        self._slice_mask = cfg.gpu.l2_slices - 1
        self.network = Crossbar(
            "xbar", self.mem_clock, ["cpu", *self.slice_names, MEMCTRL],
            hop_latency_cycles=cfg.network.hop_latency_cycles,
            bytes_per_cycle=cfg.network.bytes_per_cycle,
            line_size=cfg.line_size)
        self.engine = HammerSystem(
            self.network, self.dram, self.image, self.mem_clock,
            memctrl_latency_cycles=cfg.network.memctrl_latency_cycles,
            broadcast_enabled=mode.broadcast_enabled)

        # --- CPU side ----------------------------------------------------
        self.cpu_l2 = SetAssociativeCache(
            "cpu.l2", cfg.cpu.l2_size, cfg.cpu.l2_ways, cfg.line_size,
            cfg.replacement)
        self.cpu_l1d = SetAssociativeCache(
            "cpu.l1d", cfg.cpu.l1d_size, cfg.cpu.l1d_ways, cfg.line_size,
            cfg.replacement)
        self.cpu_l1i = SetAssociativeCache(
            "cpu.l1i", cfg.cpu.l1i_size, cfg.cpu.l1i_ways, cfg.line_size,
            cfg.replacement)
        cpu_agent = CoherentAgent(
            "cpu", self.cpu_l2, self.cpu_clock, cfg.cpu.l2_latency_cycles,
            may_cache=lambda line: not self.dsu.is_ds_physical_line(line))
        # broadcast protocol: the CPU is probed for every line, including
        # window lines it can never cache (it acks from I)
        cpu_agent.probe_filter = lambda _line: True
        self.engine.add_agent(cpu_agent)
        self.cpu_port = CoherentPort("cpu.port", "cpu", self.engine,
                                     self.queue, cfg.cpu.num_mshrs)
        self.cpu_tlb = TLB("cpu.tlb", cfg.cpu.tlb_entries,
                           detector_enabled=mode.forwarding_enabled)
        self.cpu_mmu = MMU("cpu.mmu", self.page_table, self.cpu_tlb,
                           walk_cycles=cfg.cpu.tlb_walk_cycles)
        self.cpu_mem = CpuMemorySubsystem(
            "cpu.mem", self.queue, self.cpu_clock, self.cpu_l1d,
            self.cpu_port, self.engine, self._slice_for,
            l1_latency_cycles=cfg.cpu.l1d_latency_cycles,
            forward_enabled=mode.forwarding_enabled)
        cpu_agent.on_back_invalidate = self.cpu_mem.invalidate_l1
        # write-back L1D: flush newer words down before probes read the
        # L2 line and before the L2 array copies an eviction victim
        cpu_agent.on_probe = self.cpu_mem.flush_l1_to_l2
        self.cpu_l2.pre_victim = (
            lambda line_address, _line:
            self.cpu_mem.flush_l1_to_l2(line_address))
        self.cpu_core = CpuCore(
            "cpu.core", self.queue, self.cpu_clock, self.cpu_mmu,
            self.cpu_mem,
            store_buffer_entries=cfg.cpu.store_buffer_entries,
            max_outstanding_drains=cfg.cpu.max_outstanding_drains)

        # --- GPU side ------------------------------------------------------
        slice_size = cfg.gpu.l2_size // cfg.gpu.l2_slices
        self.gpu_l2_slices: List[SetAssociativeCache] = []
        self.slice_ports: Dict[str, CoherentPort] = {}
        for index, slice_name in enumerate(self.slice_names):
            cache = SetAssociativeCache(
                slice_name, slice_size, cfg.gpu.l2_ways, cfg.line_size,
                cfg.gpu.l2_replacement, interleave=cfg.gpu.l2_slices,
                interleave_offset=index)
            self.gpu_l2_slices.append(cache)
            agent = CoherentAgent(
                slice_name, cache, self.gpu_clock,
                cfg.gpu.l2_latency_cycles,
                may_cache=self._slice_predicate(index))
            self.engine.add_agent(agent)
            self.slice_ports[slice_name] = CoherentPort(
                f"{slice_name}.port", slice_name, self.engine, self.queue,
                cfg.gpu.mshrs_per_slice)
        self.gpu_tlb = TLB("gpu.tlb", cfg.gpu.tlb_entries,
                           detector_enabled=False)
        self.gpu_mmu = MMU("gpu.mmu", self.page_table, self.gpu_tlb,
                           walk_cycles=cfg.gpu.tlb_walk_cycles)
        self.prefetcher = None
        if cfg.gpu.prefetch_degree > 0:
            from repro.gpu.prefetch import NextLinePrefetcher
            self.prefetcher = NextLinePrefetcher(
                "gpu.prefetcher", self.engine, self._slice_for,
                degree=cfg.gpu.prefetch_degree)
        self.sms: List[StreamingMultiprocessor] = []
        for index in range(cfg.gpu.num_sms):
            l1 = SetAssociativeCache(
                f"gpu.sm{index}.l1", cfg.gpu.l1_size, cfg.gpu.l1_ways,
                cfg.line_size, cfg.replacement)
            self.sms.append(StreamingMultiprocessor(
                f"gpu.sm{index}", self.queue, self.gpu_clock, l1,
                self.gpu_mmu, self.slice_ports, self._slice_for,
                l1_latency_cycles=cfg.gpu.l1_latency_cycles,
                shmem_latency_cycles=cfg.gpu.shmem_latency_cycles,
                record_loads=record_gpu_loads,
                prefetcher=self.prefetcher))
        self.gpu = GpuDevice("gpu", self.sms)

        # --- the dedicated direct-store network (§III-G) --------------------
        self.ds_network: Optional[DirectStoreNetwork] = None
        if mode.forwarding_enabled:
            self.ds_network = DirectStoreNetwork(
                "dsnet", self.mem_clock, "cpu", self.slice_names,
                latency_cycles=cfg.network.ds_latency_cycles,
                bytes_per_cycle=cfg.network.ds_bytes_per_cycle,
                line_size=cfg.line_size)
            self.engine.attach_direct_network(self.ds_network)

        # --- telemetry ---------------------------------------------------
        # The tracer is process-global; enabling it here lets every
        # component emit through its own TRACER.enabled guard with no
        # per-call plumbing.  The consumer (CLI/test) clears it between
        # runs; the clock is rebound to this system's queue either way.
        if self.telemetry.trace:
            TRACER.configure(capacity=self.telemetry.trace_capacity)
            TRACER.enable()
        if TRACER.enabled:
            queue = self.queue
            TRACER.bind_clock(lambda: queue.current_tick)
        self.sampler: Optional[IntervalSampler] = None
        if self.telemetry.sample_interval > 0:
            self.sampler = IntervalSampler(
                self.telemetry.sample_interval, self._build_probes())
            self.simulator.sampler = self.sampler

        # --- run state --------------------------------------------------
        self._phases: List[object] = []
        self._phase_index = 0
        self._finish_tick = 0
        self._ran = False
        #: (phase_name, start_tick, end_tick) per executed phase
        self.phase_times: List[tuple] = []
        #: per-phase telemetry dicts (name/start/end + counter deltas)
        self.phase_records: List[Dict] = []
        self._phase_counter_base: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def _slice_for(self, line_address: int) -> str:
        # inlined slice_for_line: this runs once per memory access
        return self.slice_names[
            (line_address >> self._line_bits) & self._slice_mask]

    def _slice_predicate(self, index: int):
        line_bits = self._line_bits
        slice_mask = self._slice_mask

        def _may_cache(line_address: int) -> bool:
            return ((line_address >> line_bits) & slice_mask) == index

        return _may_cache

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _build_probes(self) -> List[Probe]:
        """Counter sources for the interval sampler.

        Delta probes answer "how much happened this epoch" (the Fig. 4/5
        story: forwarded stores land, then first-touch hits replace
        misses); gauges capture occupancies at the sample instant.
        """
        gpu_l2 = self.gpu_l2_slices
        slice_ports = list(self.slice_ports.values())
        probes = [
            Probe("gpu_l2_accesses",
                  lambda: sum(c.accesses for c in gpu_l2)),
            Probe("gpu_l2_misses",
                  lambda: sum(c.misses for c in gpu_l2)),
            Probe("gpu_l2_first_touch_hits",
                  lambda: sum(c.first_touch_hits for c in gpu_l2)),
            Probe("cpu_stores",
                  lambda: self.cpu_mem.stats.counter("stores").value),
            Probe("network_messages",
                  lambda: self.network.total_messages),
            Probe("network_bytes", lambda: self.network.total_bytes),
            Probe("dram_accesses",
                  lambda: (self.dram.stats.counter("reads").value
                           + self.dram.stats.counter("writes").value)),
            Probe("cpu_mshr_occupancy",
                  lambda: len(self.cpu_port.mshrs), mode="gauge"),
            Probe("gpu_mshr_occupancy",
                  lambda: sum(len(port.mshrs) for port in slice_ports),
                  mode="gauge"),
            Probe("store_buffer_occupancy",
                  lambda: len(self.cpu_core.store_buffer), mode="gauge"),
            Probe("event_queue_depth",
                  lambda: len(self.queue), mode="gauge"),
        ]
        if self.ds_network is not None:
            probes.insert(3, Probe(
                "forwarded_stores",
                lambda: self.ds_network.forwarded_stores))
            probes.append(Probe(
                "ds_bytes", lambda: self.ds_network.total_bytes))
        return probes

    def _phase_counters(self) -> Dict[str, float]:
        """The cumulative counters snapshotted at every phase boundary.

        Reads only — always on, cheap (a handful per phase), and with no
        effect on event timing, so phase records exist in every run.
        """
        return {
            "forwarded_stores": (self.ds_network.forwarded_stores
                                 if self.ds_network is not None else 0),
            "gpu_l2_accesses": sum(c.accesses for c in self.gpu_l2_slices),
            "gpu_l2_misses": sum(c.misses for c in self.gpu_l2_slices),
            "gpu_l2_first_touch_hits": sum(
                c.first_touch_hits for c in self.gpu_l2_slices),
            "cpu_stores": self.cpu_mem.stats.counter("stores").value,
            "network_messages": self.network.total_messages,
        }

    def _open_phase_record(self, name: str, start_tick: int) -> None:
        self.phase_records.append(
            {"name": name, "start": start_tick, "end": start_tick})
        self._phase_counter_base = self._phase_counters()

    def _close_phase_record(self, end_tick: int) -> None:
        if not self.phase_records or self._phase_counter_base is None:
            return
        record = self.phase_records[-1]
        record["end"] = end_tick
        current = self._phase_counters()
        for key, value in current.items():
            record[key] = value - self._phase_counter_base[key]
        self._phase_counter_base = None
        if TRACER.enabled:
            TRACER.span("phase", record["name"], record["start"], end_tick,
                        track="phases",
                        args={key: record[key] for key in current})

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def build_context(self) -> BuildContext:
        """The context handed to workload generators."""
        return BuildContext(
            alloc=self._alloc,
            line_size=self.config.line_size,
            num_sms=self.config.gpu.num_sms,
            lanes_per_warp=self.config.gpu.lanes_per_sm,
            alloc_at=self._alloc_at,
        )

    def _alloc(self, name: str, size_bytes: int, gpu_accessed: bool) -> int:
        region = self.dsu.allocate(name, size_bytes, gpu_accessed)
        return region.start

    def _alloc_at(self, name: str, window_address: int,
                  size_bytes: int) -> int:
        region = self.dsu.allocate_at(name, window_address, size_bytes)
        return region.start

    def run(self, workload: Workload) -> RunResult:
        """Execute *workload* to completion and return its metrics."""
        if self._ran:
            raise RuntimeError(
                "IntegratedSystem instances are single-use; build a fresh "
                "one per run")
        self._ran = True
        with PROFILER.section("trace_build"):
            self._phases = workload.build_phases(self.build_context())
        if not self._phases:
            raise ValueError(f"workload {workload!r} built no phases")
        self._phase_index = 0
        self._start_next_phase(0)
        self.simulator.run()
        if self.sampler is not None:
            self.sampler.finalize(self._finish_tick)
        return self._collect(workload)

    def _start_next_phase(self, finish_tick: int) -> None:
        self._finish_tick = max(self._finish_tick, finish_tick)
        if self.phase_times:
            name, start, _unset = self.phase_times[-1]
            self.phase_times[-1] = (name, start, finish_tick)
            self._close_phase_record(finish_tick)
        if self._phase_index >= len(self._phases):
            return
        phase = self._phases[self._phase_index]
        self._phase_index += 1
        start_tick = self.queue.current_tick
        if isinstance(phase, CpuPhase):
            self.phase_times.append((phase.name, start_tick, None))
            self._open_phase_record(phase.name, start_tick)
            self.cpu_core.run_phase(phase.ops, self._start_next_phase)
        elif isinstance(phase, KernelLaunch):
            self.phase_times.append((phase.name, start_tick, None))
            self._open_phase_record(phase.name, start_tick)
            self.gpu.launch(phase, self._start_next_phase)
        else:
            raise TypeError(f"unknown phase type {type(phase).__name__}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Protocol safety check over the final cache state."""
        self.engine.check_invariants()

    def _collect(self, workload: Workload) -> RunResult:
        stats: Dict[str, float] = {}
        registries = [self.engine.stats, self.network.stats,
                      self.dram.stats, self.cpu_core.stats,
                      self.cpu_mem.stats, self.cpu_mmu.stats,
                      self.cpu_tlb.stats, self.gpu_mmu.stats,
                      self.gpu_tlb.stats, self.dsu.stats]
        caches = [self.cpu_l1d, self.cpu_l2, *self.gpu_l2_slices,
                  *[sm.l1 for sm in self.sms]]
        for registry in registries:
            stats.update(registry.dump())
        for cache in caches:
            stats.update(cache.stats.dump())
        if self.ds_network is not None:
            stats.update(self.ds_network.stats.dump())

        result = RunResult(
            workload=f"{workload.code}/{workload.input_size}",
            mode=self.mode.value,
            total_ticks=self._finish_tick,
            gpu_l2=merge_snapshots(
                *[snapshot_cache(cache) for cache in self.gpu_l2_slices]),
            gpu_l1=merge_snapshots(
                *[snapshot_cache(sm.l1) for sm in self.sms]),
            cpu_l1d=snapshot_cache(self.cpu_l1d),
            cpu_l2=snapshot_cache(self.cpu_l2),
            network_messages=self.network.total_messages,
            network_bytes=self.network.total_bytes,
            ds_messages=(self.ds_network.total_messages
                         if self.ds_network else 0),
            ds_forwarded_stores=(self.ds_network.forwarded_stores
                                 if self.ds_network else 0),
            dram_reads=self.dram.stats.counter("reads").value,
            dram_writes=self.dram.stats.counter("writes").value,
            cpu_loads=self.cpu_mem.stats.counter("loads").value,
            cpu_stores=self.cpu_mem.stats.counter("stores").value,
            events_fired=self.simulator.events_fired,
            stats=stats,
            phases=[dict(record) for record in self.phase_records],
            timeseries=(self.sampler.to_timeseries()
                        if self.sampler is not None else None),
        )
        return result
