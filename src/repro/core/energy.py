"""A first-order memory-system energy proxy.

The paper evaluates performance only, but its related work frames
prefetching/coherence choices in power terms as well, and direct
store's traffic reduction translates directly into energy.  This module
applies standard per-event energy weights (CACTI/DRAMPower-era orders
of magnitude, 22-28 nm class) to a run's statistics:

* cache accesses (per level, by array size class),
* DRAM reads/writes,
* interconnect traffic (per byte, per hop class).

Absolute joules are not the point — the CCSM-vs-DS *ratio* on identical
work is, exactly like the paper's tick ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.metrics import RunResult


@dataclass(frozen=True)
class EnergyWeights:
    """Per-event energies in picojoules."""

    l1_access_pj: float = 10.0
    l2_access_pj: float = 40.0
    dram_read_pj: float = 2000.0
    dram_write_pj: float = 2000.0
    #: per byte moved on the coherence crossbar (wires + buffers)
    network_byte_pj: float = 1.0
    #: per byte on the shorter dedicated point-to-point link
    ds_network_byte_pj: float = 0.6
    #: per TLB detector comparison (a handful of gates)
    detector_pj: float = 0.05


@dataclass
class EnergyBreakdown:
    """Energy per component for one run, in picojoules."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    def summary(self) -> str:
        total = self.total_pj or 1.0
        lines = [f"{name:<16s} {value / 1e6:10.2f} uJ "
                 f"({value / total:6.1%})"
                 for name, value in sorted(self.components.items(),
                                           key=lambda kv: -kv[1])]
        lines.append(f"{'total':<16s} {total / 1e6:10.2f} uJ")
        return "\n".join(lines)


def estimate_energy(result: RunResult,
                    weights: EnergyWeights = EnergyWeights()
                    ) -> EnergyBreakdown:
    """Apply *weights* to one run's event counts."""
    stats = result.stats
    breakdown = EnergyBreakdown()
    breakdown.components["gpu_l1"] = (
        result.gpu_l1.accesses * weights.l1_access_pj)
    breakdown.components["cpu_l1d"] = (
        result.cpu_l1d.accesses * weights.l1_access_pj)
    breakdown.components["gpu_l2"] = (
        result.gpu_l2.accesses * weights.l2_access_pj)
    breakdown.components["cpu_l2"] = (
        result.cpu_l2.accesses * weights.l2_access_pj)
    breakdown.components["dram"] = (
        result.dram_reads * weights.dram_read_pj
        + result.dram_writes * weights.dram_write_pj)
    breakdown.components["network"] = (
        result.network_bytes * weights.network_byte_pj)
    ds_bytes = stats.get("dsnet.bytes", 0.0)
    breakdown.components["ds_network"] = (
        ds_bytes * weights.ds_network_byte_pj)
    detections = stats.get(
        "cpu.tlb.direct_store_detections", 0.0)
    breakdown.components["tlb_detector"] = (
        detections * weights.detector_pj)
    return breakdown
