"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``run``        run one Table II benchmark under one (or every) mode
``compare``    CCSM vs direct store for one benchmark, paper metrics
``figure4``    regenerate Fig. 4 (speedups + geomean) for one input size
``figure5``    regenerate Fig. 5 (GPU L2 miss rates)
``table1``     print the simulated Table I configuration
``table2``     print the benchmark inventory
``translate``  run the §III-C source translator on a .cu file
``sweep``      ablation sweeps (ds-latency, ds-bandwidth, l2-size)
``explore``    analytic design-space explorer (docs/EXPLORER.md)
``cache``      result-cache maintenance (stats / compact / evict)
``serve``      long-running simulation job server (docs/SERVICE.md)
``submit``     submit one job to a running server and await the result
``top``        live terminal dashboard over a server's ``/metrics``
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import SystemConfig
from repro.core.protocol_mode import CoherenceMode
from repro.harness.experiments import figure4, figure5
from repro.harness.parallel import compare_many
from repro.harness.reporting import (ascii_bar_chart, format_table,
                                     phase_summary_line, timeline_summary,
                                     timeseries_panel)
from repro.harness.runner import run_benchmark
from repro.harness.sweep import sweep_config
from repro.harness.resultcache import default_cache
from repro.telemetry import (TRACER, TelemetrySettings, write_chrome_trace,
                             write_jsonl)
from repro.workloads.suite import TABLE2, benchmark_codes

MODES = {mode.value: mode for mode in CoherenceMode}

#: default sampling interval for ``compare`` (ticks); run lengths span
#: roughly 3.5M–300M ticks, so this yields a few to a few hundred samples
COMPARE_SAMPLE_INTERVAL = 1_000_000


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input-size", choices=("small", "big"),
                        default="small")


def _add_execution(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the persistent result cache")
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR "
             "or .repro_cache)")


def _cache_for(args):
    if args.no_cache:
        return None
    return default_cache(args.cache_dir)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Direct store (DAC 2020) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark")
    run.add_argument("code", help="Table II code, e.g. VA")
    run.add_argument("--mode", choices=sorted(MODES) + ["all"],
                     default="direct_store")
    run.add_argument(
        "--profile", action="store_true",
        help="attribute host wall time to simulator components "
             "(coalescer/TLB/cache/protocol/engine) and print a table")
    run.add_argument(
        "--engine", choices=("auto", "epoch", "scalar", "compiled"),
        default="auto",
        help="event-engine implementation (auto: environment "
             "REPRO_SCALAR_ENGINE/REPRO_COMPILED_ENGINE, else epoch); "
             "all three are bit-identical — see docs/PERFORMANCE.md")
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON (open in Perfetto); with "
             "--mode all the mode is suffixed, e.g. trace.ccsm.json")
    run.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="write raw trace events as JSON lines")
    run.add_argument(
        "--sample-interval", type=int, default=0, metavar="TICKS",
        help="record interval time-series every TICKS simulated ticks")
    run.add_argument(
        "--timeline", action="store_true",
        help="print a terminal timeline summary after each run")
    _add_common(run)

    compare = sub.add_parser("compare", help="CCSM vs direct store")
    compare.add_argument("code")
    compare.add_argument(
        "--sample-interval", type=int, default=COMPARE_SAMPLE_INTERVAL,
        metavar="TICKS",
        help="interval time-series granularity in ticks "
             f"(default {COMPARE_SAMPLE_INTERVAL:,}; 0 disables)")
    _add_common(compare)
    _add_execution(compare)

    fig4 = sub.add_parser("figure4", help="regenerate Fig. 4")
    _add_common(fig4)
    _add_execution(fig4)
    fig4.add_argument("--codes", nargs="*", default=None)

    fig5 = sub.add_parser("figure5", help="regenerate Fig. 5")
    _add_common(fig5)
    _add_execution(fig5)
    fig5.add_argument("--codes", nargs="*", default=None)

    sub.add_parser("table1", help="print the system configuration")
    sub.add_parser("table2", help="print the benchmark inventory")

    translate = sub.add_parser("translate",
                               help="source-to-source translate a file")
    translate.add_argument("path")
    translate.add_argument("--output", "-o", default=None,
                           help="write the translated source here")

    sweep = sub.add_parser("sweep", help="ablation sweeps")
    sweep.add_argument("what", choices=("ds-latency", "ds-bandwidth",
                                        "l2-size"))
    sweep.add_argument("code", nargs="?", default="VA")
    _add_common(sweep)
    _add_execution(sweep)

    explore = sub.add_parser(
        "explore", help="analytic design-space explorer")
    explore.add_argument("code", nargs="?", default="VA",
                         help="Table II code to explore (default VA)")
    _add_common(explore)
    _add_execution(explore)
    explore.add_argument(
        "--points", type=int, default=256,
        help="candidates to score analytically (default 256; the full "
             "grid when it is smaller)")
    explore.add_argument("--seed", type=int, default=0,
                         help="candidate-sampling seed (default 0)")
    explore.add_argument(
        "--top-k", type=int, default=8,
        help="frontier points to validate with real simulations "
             "(default 8, max 16)")
    explore.add_argument(
        "--axes", nargs="*", default=None, metavar="AXIS",
        help="subset of the default axes to sweep (sm_count, l1_size, "
             "l2_size, link_width, dram_banks)")
    explore.add_argument(
        "--modes", nargs="*", default=None, choices=sorted(MODES),
        help="coherence modes to include (default: ccsm direct_store)")
    explore.add_argument(
        "--serve-url", default=None, metavar="URL",
        help="fan probes and validations out to a running "
             "'repro serve' instead of simulating in-process")
    explore.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the full report as JSON")
    explore.add_argument(
        "--no-refit", action="store_true",
        help="skip the closed-loop beta refit from validation runs")

    cache_parser = sub.add_parser(
        "cache", help="result-cache maintenance")
    cache_parser.add_argument("action",
                              choices=("stats", "compact", "evict"))
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR "
             "or .repro_cache)")
    cache_parser.add_argument(
        "--bytes", type=int, default=None, metavar="N",
        help="byte budget: compact/evict delete least-recently-used "
             "entries beyond it (evict requires it; compact falls back "
             "to REPRO_CACHE_BYTES)")
    cache_parser.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of a table")

    serve = sub.add_parser(
        "serve", help="run the simulation job server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores)")
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout (default: REPRO_SERVE_TIMEOUT "
             "or none)")
    serve.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the persistent result cache")
    serve.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: REPRO_CACHE_DIR "
             "or .repro_cache)")
    serve.add_argument(
        "--cache-bytes", type=int, default=None, metavar="BYTES",
        help="evict oldest entries beyond this budget (default: "
             "REPRO_CACHE_BYTES or unbounded)")
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs on stderr (same as "
             "REPRO_LOG=json; see docs/OBSERVABILITY.md)")

    top = sub.add_parser(
        "top", help="live dashboard over a running server's /metrics")
    top.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="server base URL (default http://127.0.0.1:8787)")
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2.0)")
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)")
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of repainting (logs, pipes)")

    submit = sub.add_parser(
        "submit", help="submit one job to a running server")
    submit.add_argument("code", help="Table II code, e.g. VA")
    submit.add_argument("--mode", choices=sorted(MODES),
                        default="direct_store")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="server base URL (default http://127.0.0.1:8787)")
    submit.add_argument(
        "--sample-interval", type=int, default=0, metavar="TICKS",
        help="request an interval time-series every TICKS ticks")
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit without awaiting the result")
    _add_common(submit)
    return parser


def _mode_path(path: str, mode: CoherenceMode, multi: bool) -> str:
    """Suffix the mode into *path* when several modes share one run."""
    if not multi:
        return path
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.{mode.value}"
    return f"{stem}.{mode.value}.{ext}"


def _cmd_run(args) -> int:
    if args.engine != "auto":
        # the mode env vars are the single source of truth the engine
        # reads at run start; the flag just sets them for this process
        import os
        from repro.engine.modes import COMPILED_ENGINE_ENV, SCALAR_ENGINE_ENV
        os.environ[SCALAR_ENGINE_ENV] = \
            "1" if args.engine == "scalar" else "0"
        os.environ[COMPILED_ENGINE_ENV] = \
            "1" if args.engine == "compiled" else "0"
    if args.profile:
        from repro.utils.profiler import PROFILER
        PROFILER.enable()
        PROFILER.reset()
    telemetry = TelemetrySettings.from_env(TelemetrySettings(
        trace=bool(args.trace_out or args.trace_jsonl),
        sample_interval=args.sample_interval or 0))
    modes = (list(CoherenceMode) if args.mode == "all"
             else [MODES[args.mode]])
    multi = len(modes) > 1
    rows = []
    summaries = []
    for mode in modes:
        if telemetry.trace:
            TRACER.clear()
        result = run_benchmark(args.code, args.input_size, mode,
                               telemetry=telemetry)
        rows.append((mode.value, f"{result.total_ticks:,}",
                     f"{result.gpu_l2_miss_rate:.1%}",
                     f"{result.network_messages:,}",
                     f"{result.ds_forwarded_stores:,}"))
        summaries.append(f"[{mode.value}] "
                         + phase_summary_line(result.phases))
        label = f"{args.code.upper()}/{args.input_size} {mode.value}"
        if args.trace_out:
            path = _mode_path(args.trace_out, mode, multi)
            write_chrome_trace(path, TRACER, phases=result.phases,
                               timeseries=result.timeseries, label=label)
            print(f"wrote {path} ({len(TRACER)} events, "
                  f"{TRACER.dropped} dropped)", file=sys.stderr)
        if args.trace_jsonl:
            path = _mode_path(args.trace_jsonl, mode, multi)
            write_jsonl(path, TRACER)
            print(f"wrote {path}", file=sys.stderr)
        if args.timeline:
            print(f"\n-- timeline: {label} --")
            print(timeline_summary(
                tracer=TRACER if telemetry.trace else None,
                phases=result.phases, timeseries=result.timeseries))
    print(format_table(
        ["Mode", "Total ticks", "GPU L2 miss rate", "Coherence msgs",
         "Forwards"], rows))
    for line in summaries:
        print(line)
    if args.profile:
        print("\nhost-time profile (all modes combined):")
        print(PROFILER.report())
    return 0


def _cmd_compare(args) -> int:
    telemetry = (TelemetrySettings.from_env(TelemetrySettings(
        sample_interval=args.sample_interval))
        if args.sample_interval > 0 else None)
    comparison = compare_many([args.code], args.input_size,
                              jobs=args.jobs, cache=_cache_for(args),
                              telemetry=telemetry)[0]
    print(format_table(
        ["Metric", "CCSM", "Direct store"],
        [("total ticks", f"{comparison.ccsm.total_ticks:,}",
          f"{comparison.direct_store.total_ticks:,}"),
         ("GPU L2 miss rate", f"{comparison.ccsm_miss_rate:.1%}",
          f"{comparison.ds_miss_rate:.1%}"),
         ("GPU L2 first-touch hits",
          f"{comparison.ccsm.gpu_l2.first_touch_hits:,}",
          f"{comparison.direct_store.gpu_l2.first_touch_hits:,}"),
         ("compulsory misses",
          f"{comparison.ccsm.gpu_l2.compulsory_misses:,}",
          f"{comparison.direct_store.gpu_l2.compulsory_misses:,}")]))
    print(f"\nspeedup: {comparison.speedup_percent:+.1f}%")
    for label, result in (("ccsm", comparison.ccsm),
                          ("direct_store", comparison.direct_store)):
        print(f"[{label}] " + phase_summary_line(result.phases))
    if telemetry is not None:
        # cached pre-telemetry entries carry no samples; the panel
        # degrades to "(no samples)" rather than failing
        for label, result in (("ccsm", comparison.ccsm),
                              ("direct_store", comparison.direct_store)):
            print(f"\n-- {label} --")
            print(timeseries_panel(result.timeseries))
    return 0


def _cmd_figure4(args) -> int:
    rows = figure4(args.input_size, codes=args.codes,
                   jobs=args.jobs, cache=_cache_for(args),
                   progress=lambda code: print(f"  finished {code}",
                                               file=sys.stderr))
    print(f"FIG. 4 — speedup, {args.input_size} inputs")
    print(ascii_bar_chart(
        [(row.code, max(0.0, row.speedup_percent)) for row in rows],
        unit="%"))
    from repro.harness.experiments import geomean_nonzero_speedup
    geomean = geomean_nonzero_speedup(rows)
    print(f"geomean of non-zero speedups: {(geomean - 1) * 100:.1f}%")
    return 0


def _cmd_figure5(args) -> int:
    rows = figure5(args.input_size, codes=args.codes,
                   jobs=args.jobs, cache=_cache_for(args),
                   progress=lambda code: print(f"  finished {code}",
                                               file=sys.stderr))
    print(f"FIG. 5 — GPU L2 miss rate, {args.input_size} inputs")
    print(format_table(
        ["Name", "CCSM", "Direct store"],
        [(row.code, f"{row.ccsm_miss_rate:.1%}",
          f"{row.ds_miss_rate:.1%}") for row in rows]))
    return 0


def _cmd_table1(_args) -> int:
    print(SystemConfig().describe())
    return 0


def _cmd_table2(_args) -> int:
    print(format_table(
        ["Name", "Small input", "Big input", "Suite", "Shared"],
        [(row.code, row.small_input, row.big_input, row.suite,
          "Yes" if row.shared else "No") for row in TABLE2]))
    return 0


def _cmd_translate(args) -> int:
    from repro.core.translator import SourceTranslator
    with open(args.path) as handle:
        source = handle.read()
    report = SourceTranslator().translate_source(source, args.path)
    for allocation in report.allocations:
        print(f"{allocation.name}: {allocation.window_address:#x} "
              f"({allocation.size_bytes:,} bytes, "
              f"was {allocation.allocator})", file=sys.stderr)
    if report.unresolved:
        print(f"warning: unresolved kernel arguments: "
              f"{', '.join(report.unresolved)}", file=sys.stderr)
    translated = report.translated_sources[args.path]
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(translated)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(translated)
    return 0


def _cmd_sweep(args) -> int:
    if args.what == "ds-latency":
        values: List[object] = [2, 8, 32, 128]
        apply = lambda cfg, v: setattr(cfg.network, "ds_latency_cycles", v)
    elif args.what == "ds-bandwidth":
        values = [64, 32, 16, 4]
        apply = lambda cfg, v: setattr(cfg.network, "ds_bytes_per_cycle", v)
    else:
        mib = 1024 * 1024
        values = [mib // 4, mib // 2, mib, 2 * mib, 4 * mib]
        apply = lambda cfg, v: setattr(cfg.gpu, "l2_size", v)
    points = sweep_config(args.code, args.input_size, values, apply,
                          label=args.what, jobs=args.jobs,
                          cache=_cache_for(args))
    print(format_table(
        [args.what, "Speedup", "DS miss rate"],
        [(point.value, f"{(point.speedup - 1) * 100:+.1f}%",
          f"{point.comparison.ds_miss_rate:.1%}") for point in points]))
    return 0


def _cmd_explore(args) -> int:
    import json
    from repro.model import DesignSpace, default_axes, explore, \
        format_report
    axes = None
    if args.axes is not None:
        by_name = {axis.name: axis for axis in default_axes()}
        unknown = [name for name in args.axes if name not in by_name]
        if unknown:
            raise ValueError(
                f"unknown axis {unknown[0]!r}; choose from "
                f"{', '.join(by_name)}")
        if not args.axes:
            raise ValueError("--axes needs at least one axis name")
        axes = tuple(by_name[name] for name in args.axes)
    modes = None
    if args.modes is not None:
        if not args.modes:
            raise ValueError("--modes needs at least one mode")
        modes = tuple(MODES[value] for value in args.modes)
    client = None
    if args.serve_url:
        from repro.serve.client import ServeClient
        client = ServeClient.from_url(args.serve_url)
    space = DesignSpace(axes=axes, modes=modes)
    report = explore(
        args.code, args.input_size, points=args.points, seed=args.seed,
        top_k=args.top_k, space=space, jobs=args.jobs,
        cache=None if client is not None else _cache_for(args),
        client=client, refit=not args.no_refit,
        progress=lambda label: print(f"  simulated {label}",
                                     file=sys.stderr))
    print(format_report(report))
    if args.report_out:
        with open(args.report_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote {args.report_out}", file=sys.stderr)
    return 0


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{count} B")
        value /= 1024
    return f"{count} B"  # unreachable


def _cmd_cache(args) -> int:
    import json
    from repro.harness.resultcache import ResultCache
    cache = ResultCache(args.cache_dir or None)
    if args.action == "stats":
        from repro.metrics import REGISTRY
        from repro.metrics import names as metric_names
        stats = cache.scan()  # also refreshes the cache gauges
        # same names as GET /metrics — one naming source, no drift
        metrics = {}
        for name in metric_names.CACHE_FAMILIES:
            family = REGISTRY.get(name)
            metrics[name] = family.labels().value if family else 0.0
        if args.json:
            print(json.dumps(dict(stats.to_dict(),
                                  directory=str(cache.directory),
                                  metrics=metrics),
                             indent=2))
        else:
            print(format_table(["Cache", "Value"], [
                ("directory", str(cache.directory)),
                ("entries", f"{stats.entries:,}"),
                ("total size", _format_bytes(stats.total_bytes)),
                ("shard dirs", str(stats.shard_dirs)),
                ("legacy flat entries", str(stats.legacy_entries)),
                ("stale temp files", str(stats.stale_tmp)),
            ] + [(name, f"{value:g}")
                 for name, value in metrics.items()]))
        return 0
    if args.action == "evict" and args.bytes is None:
        raise ValueError("cache evict requires --bytes N")
    before = cache.scan()
    evicted = cache.compact(byte_budget=args.bytes)
    after = cache.scan()
    print(f"{args.action}: {evicted} entr"
          f"{'y' if evicted == 1 else 'ies'} evicted, "
          f"{before.stale_tmp - after.stale_tmp} stale temp file(s) "
          f"swept; {after.entries:,} entries, "
          f"{_format_bytes(after.total_bytes)} remain")
    return 0


def _cmd_serve(args) -> int:
    import os
    from repro.harness.resultcache import ResultCache
    from repro.serve.scheduler import TIMEOUT_ENV
    from repro.serve.server import run_server
    if args.log_json:
        from repro import obslog
        obslog.configure("json")
    if args.no_cache:
        cache = None
    else:
        cache = ResultCache(args.cache_dir or None,
                            byte_budget=args.cache_bytes)
    timeout = args.timeout
    if timeout is None:
        env = os.environ.get(TIMEOUT_ENV, "").strip()
        if env:
            try:
                timeout = float(env)
            except ValueError:
                raise ValueError(f"{TIMEOUT_ENV} must be a number, "
                                 f"got {env!r}") from None
    return run_server(args.host, args.port, cache=cache, jobs=args.jobs,
                      timeout_s=timeout)


def _cmd_submit(args) -> int:
    from repro.serve.client import ServeClient, ServiceError
    client = ServeClient.from_url(args.url)
    telemetry = ({"sample_interval": args.sample_interval}
                 if args.sample_interval > 0 else None)
    try:
        job = client.submit(args.code, args.input_size, args.mode,
                            telemetry=telemetry)
        job_id = job["job_id"]
        print(f"job {job_id} [{job['state']}] "
              f"{job['code']}/{job['input_size']} {job['mode']}",
              file=sys.stderr)
        if args.no_wait:
            print(job_id)
            return 0
        for transition in client.watch(job_id):
            print(f"  {transition['state']}", file=sys.stderr)
        status = client.status(job_id)
        if status["state"] != "done":
            print(f"repro submit: job {status['state']}: "
                  f"{status.get('error') or 'no result'}",
                  file=sys.stderr)
            return 1
        result = client.run_result(job_id)
        print(result.summary())
        print(f"(served from cache: "
              f"{'yes' if status.get('cached') else 'no'})",
              file=sys.stderr)
    except ServiceError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1
    except ConnectionError:
        print(f"repro submit: cannot reach {args.url} — is "
              f"'python -m repro serve' running?", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args) -> int:
    from repro.serve.client import ServeClient, ServiceError
    from repro.serve.top import run_top
    base = ServeClient.from_url(args.url)
    try:
        return run_top(base.host, base.port,
                       interval_s=max(0.1, args.interval),
                       iterations=args.iterations,
                       clear=not args.no_clear)
    except ServiceError as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 1
    except ConnectionError:
        print(f"repro top: cannot reach {args.url} — is "
              f"'python -m repro serve' running?", file=sys.stderr)
        return 1


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "translate": _cmd_translate,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "top": _cmd_top,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command in ("run", "compare", "explore"):
        if args.code.upper() not in benchmark_codes():
            print(f"unknown benchmark {args.code!r}; choose from "
                  f"{', '.join(benchmark_codes())}", file=sys.stderr)
            return 2
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:  # e.g. a malformed REPRO_JOBS value
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
