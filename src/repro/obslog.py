"""Structured logging for the serving path, correlation-id first.

One logging discipline for everything that serves traffic (scheduler,
HTTP server, cache, runner): a log record is an **event name plus
flat fields**, not a format string.  In ``json`` mode each record is
one JSON object per line on stderr — machine-parseable, ready for any
log pipeline; in ``text`` mode the same record renders as a compact
``key=value`` line for humans tailing a terminal.

The correlation id is the job fingerprint: every record the scheduler
emits about a job carries ``job=<fingerprint>``, from admission
through execution to settlement, so one ``grep`` (or one structured
filter) reconstructs a job's whole story across components.  HTTP
access records carry the same id whenever the route names a job.

Logging is **off by default** and adds one attribute read per call
site when disabled — the same guard discipline as the tracer and the
profiler.  Enable with the ``REPRO_LOG`` environment variable
(``json`` or ``text``; anything else/empty is off) or programmatically
via :func:`configure` (the ``repro serve --log-json`` flag does the
latter).  Defaults change nothing observable: simulation results stay
bit-identical, CI asserts it.

::

    from repro import obslog
    log = obslog.get_logger("serve.scheduler")
    log.info("job_admitted", job=fingerprint, code="VA", mode="ccsm")
    # {"ts": 1754650000.123456, "level": "info",
    #  "component": "serve.scheduler", "event": "job_admitted",
    #  "job": "2a1f…", "code": "VA", "mode": "ccsm"}
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, TextIO

LOG_ENV = "REPRO_LOG"

#: accepted mode spellings → canonical mode
_MODES = {"json": "json", "jsonl": "json", "text": "text"}

_LEVELS = ("debug", "info", "warning", "error")


class _State:
    """Resolved-once logging state (mode + stream), reconfigurable."""

    __slots__ = ("mode", "stream")

    def __init__(self) -> None:
        self.mode: Optional[str] = None  # None: not resolved yet
        self.stream: Optional[TextIO] = None


_STATE = _State()


def configure(mode: Optional[str] = None,
              stream: Optional[TextIO] = None) -> str:
    """Set the logging mode explicitly (overrides ``REPRO_LOG``).

    *mode* is ``"json"``, ``"text"``, or anything falsy for off;
    *stream* defaults to ``sys.stderr`` and is resolved per record
    when left unset (so pytest's capture sees records).  Returns the
    canonical mode ("off" when disabled).
    """
    canonical = _MODES.get((mode or "").strip().lower(), "off")
    _STATE.mode = canonical
    _STATE.stream = stream
    _refresh_enabled()
    return canonical


def reset() -> None:
    """Back to environment-resolved, lazily — used by tests."""
    _STATE.mode = None
    _STATE.stream = None
    _refresh_enabled()


def resolved_mode() -> str:
    """The active mode: explicit configuration, else ``REPRO_LOG``."""
    if _STATE.mode is None:
        _STATE.mode = _MODES.get(
            os.environ.get(LOG_ENV, "").strip().lower(), "off")
        _refresh_enabled()
    return _STATE.mode


def _refresh_enabled() -> None:
    enabled = _STATE.mode is not None and _STATE.mode != "off"
    for logger in _LOGGERS.values():
        logger.enabled = enabled


def _render_text(record: Dict[str, Any]) -> str:
    timestamp = time.strftime("%H:%M:%S",
                              time.localtime(record["ts"]))
    head = (f"{timestamp} {record['level'].upper():<7} "
            f"{record['component']} {record['event']}")
    fields = " ".join(
        f"{key}={value}" for key, value in record.items()
        if key not in ("ts", "level", "component", "event"))
    return f"{head} {fields}" if fields else head


class Logger:
    """One component's structured logger.

    ``enabled`` is maintained by :func:`configure`/:func:`reset`, so
    the disabled fast path is a single attribute read — call sites
    never pay for string formatting that nobody will see.
    """

    __slots__ = ("component", "enabled")

    def __init__(self, component: str) -> None:
        self.component = component
        self.enabled = resolved_mode() != "off"

    def log(self, level: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(fields)
        stream = _STATE.stream or sys.stderr
        if _STATE.mode == "json":
            line = json.dumps(record, default=repr)
        else:
            line = _render_text(record)
        try:
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):
            pass  # a closed stderr must never take the service down

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


_LOGGERS: Dict[str, Logger] = {}


def get_logger(component: str) -> Logger:
    """The (process-wide) logger for *component*, created once."""
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = Logger(component)
        _LOGGERS[component] = logger
    return logger
