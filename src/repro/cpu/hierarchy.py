"""The CPU memory subsystem: a write-back L1D over the coherent L2 port.

Routing (paper Fig. 2, left):

* ordinary loads/stores go L1D → coherent L2.  The L1D is write-back,
  write-allocate (an Opteron-style L1): stores that hit retire in the
  L1, and dirtier-than-L2 data is flushed down whenever the L2 is
  probed or evicts the line (the ``on_probe`` / ``pre_victim`` hooks),
  preserving coherence visibility;
* stores whose translation carries the TLB's direct-store signal are
  *forwarded*: they bypass the whole local hierarchy and travel the
  dedicated network to the GPU L2 (``engine.remote_store``);
* loads from the direct-store window never allocate locally ("can never
  be cached on the CPU side"): they are uncached reads serviced by the
  home GPU L2 slice or memory.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Tuple

from repro.coherence.hammer import AccessResult, HammerSystem
from repro.coherence.port import CoherentPort
from repro.engine.clock import ClockDomain
from repro.engine.event import EventQueue
from repro.mem.cache import SetAssociativeCache
from repro.utils.statistics import StatsRegistry
from repro.vm.mmu import Translation

Callback = Callable[[AccessResult], None]

#: returns the GPU L2 slice agent name that homes a physical line
SliceRouter = Callable[[int], str]


class CpuMemorySubsystem:
    """L1D + coherent port + the direct-store forwarding path."""

    def __init__(self, name: str, queue: EventQueue, clock: ClockDomain,
                 l1d: SetAssociativeCache, port: CoherentPort,
                 engine: HammerSystem, slice_router: SliceRouter,
                 l1_latency_cycles: int = 2,
                 forward_enabled: bool = False) -> None:
        self.name = name
        self.queue = queue
        self.clock = clock
        self.l1d = l1d
        self.port = port
        self.engine = engine
        self.slice_router = slice_router
        self.l1_latency_cycles = l1_latency_cycles
        #: direct-store forwarding switched on (mode is DS / DS-only /
        #: hybrid); with it off the TLB signal is ignored (pure CCSM).
        self.forward_enabled = forward_enabled
        self.stats = StatsRegistry(name)
        self._line_mask = ~(engine.line_size - 1)
        #: dedicated-network flight latency, cached on first forward
        self._ds_lat: Optional[int] = None
        #: the local L2 array's probe, resolved on first install (the
        #: agent registers with the engine after the port is built)
        self._l2_probe: Optional[Callable] = None
        self._loads = self.stats.counter("loads")
        self._stores = self.stats.counter("stores")
        self._forwarded = self.stats.counter(
            "forwarded_stores", "stores sent over the dedicated network")
        self._uncached = self.stats.counter("uncached_loads")

    # ------------------------------------------------------------------

    def invalidate_l1(self, line_address: int) -> None:
        """Back-invalidation hook: the coherent L2 lost *line_address*."""
        self.l1d.invalidate(line_address)

    def flush_l1_to_l2(self, line_address: int) -> None:
        """Probe/eviction hook: push dirty L1 words down into the L2 line.

        Called by the coherence engine *before* it reads the L2 line on a
        probe, and by the L2 array before it copies an eviction victim —
        so snoopers and writebacks always observe the newest data.
        """
        l1_line = self.l1d.probe(line_address)
        if l1_line is None or not l1_line.dirty:
            return
        l2_line = self.port.engine.agents[self.port.agent_name].cache.probe(
            line_address)
        if l2_line is None:
            return
        if l1_line.data is not None:
            if l2_line.data is None:
                l2_line.data = {}
            l2_line.data.update(l1_line.data)
        l2_line.dirty = True
        l1_line.dirty = False

    def _l1_ticks(self, extra_cycles: int = 0) -> int:
        return (self.l1_latency_cycles + extra_cycles) \
            * self.clock.period_ticks

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------

    def load(self, translation: Translation, callback: Callback) -> None:
        """Issue one CPU load; *callback* fires when data is available."""
        self._loads.increment()
        now = self.queue.current_tick
        if translation.ds_window and self.forward_enabled:
            # window data: uncached read from the home
            self._uncached.increment()
            result = self.engine.uncached_load(
                self.port.agent_name, translation.physical_address,
                now + self._l1_ticks(translation.walk_cycles))
            self.queue.post_at(result.ready_tick,
                               partial(callback, result))
            return
        t_l1 = now + self._l1_ticks(translation.walk_cycles)
        line = self.l1d.lookup(translation.physical_address)
        if line is not None:
            word = None
            if self.engine.image is not None and line.data is not None:
                offset = self.engine.image.word_offset_in_line(
                    translation.physical_address)
                word = line.data.get(offset, 0)
            result = AccessResult(t_l1, word, True, "local")
            self.queue.post_at(t_l1, partial(callback, result))
            return

        def _on_fill(result: AccessResult) -> None:
            self._install_l1(translation.physical_address)
            callback(result)

        self.port.load(translation.physical_address, _on_fill)

    def _install_l1(self, physical_address: int) -> None:
        """Copy the (now-resident) L2 line up into the L1D."""
        l2_probe = self._l2_probe
        if l2_probe is None:
            l2_probe = self._l2_probe = self.port.engine.agents[
                self.port.agent_name].cache.probe
        l2_line = l2_probe(physical_address)
        if l2_line is None:
            return  # evicted again already; skip the install
        if self.l1d.probe(physical_address) is not None:
            return
        data = dict(l2_line.data) if l2_line.data is not None else None
        self.l1d.fill(physical_address, "V", self.queue.current_tick, data)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------

    def store(self, translation: Translation, value: Optional[int],
              callback: Callback,
              extra_words: Optional[List[Tuple[int, Optional[int]]]] = None,
              on_accept: Optional[Callable[[], None]] = None) -> None:
        """Drain one (possibly write-combined) store from the store buffer.

        *extra_words* holds further same-line (virtual_address, value)
        pairs the store buffer combined with this one.  *on_accept*
        fires when the memory system takes ownership of the store (MSHR
        slot, or the dedicated link finishes serialising the forward) —
        the store buffer's drain slot frees then; *callback* fires when
        the store is globally performed.
        """
        n_words = 1 + len(extra_words) if extra_words else 1
        self._stores.value += n_words
        now = self.queue.current_tick
        physical_address = translation.physical_address
        if translation.direct_store and self.forward_enabled:
            self._forwarded.value += n_words
            line_address = physical_address & self._line_mask
            slice_name = self.slice_router(line_address)
            # same line ⇒ same page: translate extras by offset
            if extra_words:
                base = physical_address - translation.virtual_address
                physical_extras = [(base + va, word_value)
                                   for va, word_value in extra_words]
            else:
                physical_extras = ()
            result = self.engine.remote_store(
                self.port.agent_name, slice_name,
                physical_address, value, now,
                extra_words=physical_extras)
            if on_accept is not None:
                # the drain slot is held until the dedicated link has
                # serialised the message (its backpressure point): the
                # remote tag lookup + flight latency happen beyond it
                dst_agent = self.engine.agents[slice_name]
                ds_lat = self._ds_lat
                if ds_lat is None:
                    ds_lat = self._ds_lat = self._ds_latency_ticks()
                accept_tick = max(now, result.ready_tick
                                  - dst_agent.tag_ticks - ds_lat)
                self.queue.post_at(accept_tick, on_accept)
            self.queue.post_at(result.ready_tick,
                               partial(callback, result))
            return
        # write-back, write-allocate: a hit retires in the L1
        t_l1 = now + self._l1_ticks(translation.walk_cycles)
        if extra_words:
            base = physical_address - translation.virtual_address
            physical_extras = [(base + va, word_value)
                               for va, word_value in extra_words]
        else:
            physical_extras = ()
        line = self.l1d.lookup(translation.physical_address)
        if line is not None:
            self._write_l1_word(line, translation.physical_address, value)
            for word_pa, word_value in physical_extras:
                self._write_l1_word(line, word_pa, word_value)
            result = AccessResult(t_l1, value, True, "local")
            if on_accept is not None:
                self.queue.post_at(t_l1, on_accept)
            self.queue.post_at(t_l1, partial(callback, result))
            return

        def _on_filled(result: AccessResult) -> None:
            # the L2 now holds the line in MM with the first word written;
            # merge the combined words, then allocate the L1 copy so
            # subsequent stores hit locally
            l2_line = self.engine.agents[self.port.agent_name].cache.probe(
                translation.physical_address)
            if l2_line is not None:
                for word_pa, word_value in physical_extras:
                    self.engine._write_word(l2_line, word_pa, word_value)
            self._install_l1(translation.physical_address)
            callback(result)

        self.port.store(translation.physical_address, value, _on_filled,
                        on_accept=on_accept)

    def _ds_latency_ticks(self) -> int:
        """Flight latency of the dedicated network, in ticks."""
        if self.engine.ds_network is None:
            return 0
        return self.engine.ds_network.clock.cycles_to_ticks(
            self.engine.ds_network.latency_cycles)

    def _write_l1_word(self, line, physical_address: int,
                       value: Optional[int]) -> None:
        if self.engine.image is not None and value is not None:
            offset = self.engine.image.word_offset_in_line(physical_address)
            if line.data is None:
                line.data = {}
            line.data[offset] = value
        line.dirty = True
