"""The CPU model: an in-order core with a private cache hierarchy.

Table I configuration: one core, 64 KiB 2-way L1D, 32 KiB 2-way L1I,
2 MiB 8-way L2.  The L2 is the CPU's coherent agent; the L1D is a
write-through cache kept inclusive under it (the engine back-invalidates
it when the L2 loses a line).  Stores retire into a store buffer and
drain in the background — this is where direct store's extra CPU store
latency is absorbed or exposed.
"""

from repro.cpu.core import CpuCore
from repro.cpu.hierarchy import CpuMemorySubsystem

__all__ = ["CpuCore", "CpuMemorySubsystem"]
