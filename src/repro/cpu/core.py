"""The in-order CPU core.

Executes a :class:`~repro.workloads.trace.CpuPhase` op by op:

* ``COMPUTE`` advances time;
* ``LOAD`` blocks the core until data returns (checking the store
  buffer first for store-to-load forwarding);
* ``STORE`` retires into the store buffer in one cycle and the core
  moves on; a background drain engine issues up to
  ``max_outstanding_drains`` stores to the memory subsystem at once.
  When the buffer fills, the core stalls — this is the channel through
  which a slow store path (e.g. a congested direct-store network) slows
  the CPU down, exactly the trade the paper describes in §III-B.

The phase is *done* when every op has issued, the buffer is empty, and
no drain is in flight.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.hierarchy import CpuMemorySubsystem
from repro.engine.clock import ClockDomain
from repro.engine.event import EventQueue
from repro.mem.writebuffer import WriteBuffer
from repro.utils.statistics import StatsRegistry
from repro.vm.mmu import MMU
from repro.workloads.trace import CpuOp, OpKind


class CpuCore:
    """Single in-order core driving the CPU memory subsystem."""

    def __init__(self, name: str, queue: EventQueue, clock: ClockDomain,
                 mmu: MMU, memory: CpuMemorySubsystem,
                 store_buffer_entries: int = 32,
                 max_outstanding_drains: int = 8) -> None:
        self.name = name
        self.queue = queue
        self.clock = clock
        self.mmu = mmu
        self.memory = memory
        self.store_buffer = WriteBuffer(f"{name}.sb", store_buffer_entries)
        self.max_outstanding_drains = max_outstanding_drains
        self.stats = StatsRegistry(name)
        self._cycle_ticks = clock.cycles_to_ticks(1)
        self._period_ticks = clock.period_ticks
        self._line_mask = ~(memory.engine.line_size - 1)
        # drain-engine callbacks, bound once (they are passed on every
        # drained store)
        self._store_complete_cb = self._store_complete
        self._drain_accepted_cb = self._drain_accepted
        self._ops_executed = self.stats.counter("ops_executed")
        self._load_latency = self.stats.histogram(
            "load_latency_ticks", [1000, 5000, 20000, 100000, 500000])
        self._sb_stall_ticks = self.stats.counter(
            "store_buffer_stall_events")
        # run state
        self._ops: List[CpuOp] = []
        self._next_op = 0
        self._drains_outstanding = 0
        self._stores_inflight = 0
        self._stalled_on_store: Optional[CpuOp] = None
        self._on_done: Optional[Callable[[int], None]] = None
        self._running = False

    # ------------------------------------------------------------------

    def run_phase(self, ops: List[CpuOp],
                  on_done: Callable[[int], None]) -> None:
        """Begin executing *ops*; *on_done(finish_tick)* fires at the end."""
        if self._running:
            raise RuntimeError(f"{self.name}: already running a phase")
        self._ops = ops
        self._next_op = 0
        self._on_done = on_done
        self._running = True
        self.queue.post_after(0, self._issue_next)

    # ------------------------------------------------------------------

    def _issue_next(self) -> None:
        if self._next_op >= len(self._ops):
            self._maybe_finish()
            return
        op = self._ops[self._next_op]
        self._next_op += 1

        if op.kind is OpKind.COMPUTE:
            self._ops_executed.increment()
            self.queue.post_after(max(1, op.cycles) * self._period_ticks,
                              self._issue_next)
            return
        if op.kind is OpKind.LOAD:
            self._ops_executed.increment()
            self._issue_load(op)
            return
        if op.kind is OpKind.STORE:
            self._issue_store(op)
            return
        raise ValueError(f"{self.name}: CPU op {op.kind} not executable")

    def _issue_load(self, op: CpuOp) -> None:
        forwarded = self.store_buffer.forwards(op.address)
        if forwarded is not None:
            # store-to-load forwarding: one-cycle bypass
            self.queue.post_after(self._cycle_ticks, self._issue_next)
            return
        issue_tick = self.queue.current_tick
        translation = self.mmu.translate(op.address, is_store=False)

        def _done(_result) -> None:
            self._load_latency.record(self.queue.current_tick - issue_tick)
            self._issue_next()

        self.memory.load(translation, _done)

    def _issue_store(self, op: CpuOp) -> None:
        if not self.store_buffer.push(op.address, op.value):
            # buffer full: stall until a drain completes
            self._sb_stall_ticks.increment()
            self._stalled_on_store = op
            self._next_op -= 1  # re-issue this op when unstalled
            return
        self._ops_executed.increment()
        self._kick_drain()
        # a store retires in one cycle plus any per-element generation
        # cost the trace attached to it (op.cycles)
        self.queue.post_after(
            (1 + max(0, op.cycles)) * self._period_ticks,
            self._issue_next)

    # ------------------------------------------------------------------
    # drain engine
    # ------------------------------------------------------------------

    def _kick_drain(self) -> None:
        sb_queue = self.store_buffer._queue
        if not sb_queue \
                or self._drains_outstanding >= self.max_outstanding_drains:
            return
        line_mask = self._line_mask
        drained = self.store_buffer._drained
        translate = self.mmu.translate
        memory_store = self.memory.store
        while (self._drains_outstanding < self.max_outstanding_drains
               and sb_queue):
            drained.value += 1
            address, value, _size = sb_queue.popleft()
            # write combining: fold adjacent queued stores to the same
            # line into one transaction (streaming produce loops combine
            # a whole line per drain)
            line = address & line_mask
            extra_words = []
            while sb_queue:
                head = sb_queue[0]
                if (head[0] & line_mask) != line:
                    break
                drained.value += 1
                sb_queue.popleft()
                extra_words.append((head[0], head[1]))
            self._drains_outstanding += 1
            self._stores_inflight += 1
            translation = translate(address, is_store=True)
            memory_store(translation, value, self._store_complete_cb,
                         extra_words=extra_words,
                         on_accept=self._drain_accepted_cb)

    def _drain_accepted(self) -> None:
        """The memory system took the store; free its drain slot."""
        self._drains_outstanding -= 1
        self._kick_drain()
        if self._stalled_on_store is not None:
            self._stalled_on_store = None
            self.queue.post_after(0, self._issue_next)

    def _store_complete(self, _result) -> None:
        """The store is globally performed (fill/forward finished)."""
        self._stores_inflight -= 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self._running and self._next_op >= len(self._ops)
                and self.store_buffer.is_empty
                and self._drains_outstanding == 0
                and self._stores_inflight == 0
                and self._stalled_on_store is None):
            self._running = False
            on_done = self._on_done
            self._on_done = None
            assert on_done is not None
            on_done(self.queue.current_tick)
