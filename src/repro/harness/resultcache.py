"""Content-addressed persistent cache of benchmark runs.

Every simulation is deterministic: the same (configuration, benchmark,
input size, mode) always produces the same :class:`RunResult`.  The
cache exploits that by storing finished runs as JSON under a cache
directory, keyed by a stable fingerprint of everything that influences
the outcome.  A config tweak, a benchmark change, or a bump of
:data:`CACHE_SCHEMA_VERSION` changes the fingerprint, so stale entries
are never returned — they simply stop being addressed and the point is
recomputed.

Layout: entries are sharded by fingerprint prefix —
``<fp[:2]>/<fingerprint>.json`` under the cache root (default
``.repro_cache/`` in the working directory, overridable with
``REPRO_CACHE_DIR`` or the constructor) — so many cooperating workers
or hosts can share one cache without a thousand-file flat directory.
Entries written by older versions live flat at
``<fingerprint>.json``; reads fall through to that legacy location
transparently, so upgrading never invalidates a warm cache.  Corrupted
or truncated entry files are treated as misses and deleted.
``REPRO_NO_CACHE=1`` disables the default cache entirely.

Writers stage entries as ``<fp>.<pid>.<seq>.tmp`` and atomically
rename into place, so concurrent writers of the same fingerprint (two
pool workers, two hosts on a shared filesystem) never interleave and
a crash never leaves a torn entry.  Orphaned temp files from crashed
writers are swept by :meth:`ResultCache.clear` and
:meth:`ResultCache.compact`.

Eviction: :meth:`ResultCache.compact` enforces an optional byte budget
(constructor argument or ``REPRO_CACHE_BYTES``) by deleting entries
oldest-mtime-first — LRU, since :meth:`ResultCache.get` refreshes the
mtime of every entry it serves.  :meth:`ResultCache.scan` reports
entry/byte/shard counts as a :class:`CacheStats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.protocol_mode import CoherenceMode
from repro.metrics import REGISTRY
from repro.metrics import names as metric_names
from repro.telemetry import TelemetrySettings
from repro.telemetry.manifest import run_manifest

#: bump when RunResult serialization or simulation semantics change in a
#: way that invalidates previously stored runs
CACHE_SCHEMA_VERSION = 1

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = ".repro_cache"

#: environment overrides
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
CACHE_BYTES_ENV = "REPRO_CACHE_BYTES"

#: how many leading fingerprint characters name the shard directory
SHARD_PREFIX_LEN = 2

#: a ``.tmp`` file older than this is an orphan from a crashed writer;
#: younger ones may belong to an in-progress put and are left alone
STALE_TMP_SECONDS = 600.0

#: per-process sequence for unique temp names (pid alone is not enough:
#: one process may write the same fingerprint from several threads)
_TMP_COUNTER = itertools.count()

#: process-wide service metrics (docs/OBSERVABILITY.md); per-instance
#: hit/miss attributes stay — they scope one cache object, these
#: aggregate the process
_METRIC_HITS = metric_names.declare(REGISTRY, metric_names.CACHE_HITS)
_METRIC_MISSES = metric_names.declare(REGISTRY,
                                      metric_names.CACHE_MISSES)
_METRIC_PUTS = metric_names.declare(REGISTRY, metric_names.CACHE_PUTS)
_METRIC_EVICTIONS = metric_names.declare(REGISTRY,
                                         metric_names.CACHE_EVICTIONS)
_METRIC_COMPACTIONS = metric_names.declare(
    REGISTRY, metric_names.CACHE_COMPACTIONS)
_METRIC_ENTRIES = metric_names.declare(REGISTRY,
                                       metric_names.CACHE_ENTRIES)
_METRIC_DISK_BYTES = metric_names.declare(REGISTRY,
                                          metric_names.CACHE_DISK_BYTES)
_METRIC_ENTRY_BYTES = metric_names.declare(
    REGISTRY, metric_names.CACHE_ENTRY_BYTES)


def config_fingerprint_payload(config: SystemConfig) -> dict:
    """The configuration contents that feed the fingerprint."""
    return dataclasses.asdict(config)


def run_fingerprint(code: str, input_size: str, mode: CoherenceMode,
                    config: SystemConfig,
                    telemetry: Optional[TelemetrySettings] = None) -> str:
    """Stable hex fingerprint of one simulation point.

    Any change to the configuration dataclasses (new fields included),
    the benchmark identity, the mode, or the cache schema version yields
    a different fingerprint.  Non-default telemetry settings join the
    payload — a sampled run carries a time-series a plain run lacks, so
    the two must never share an entry — while all-default telemetry
    contributes nothing, keeping every pre-telemetry fingerprint valid.
    """
    payload = {
        "schema_version": CACHE_SCHEMA_VERSION,
        "code": code.upper(),
        "input_size": input_size,
        "mode": mode.value,
        "config": config_fingerprint_payload(config),
    }
    if telemetry is not None:
        telemetry_payload = telemetry.fingerprint_payload()
        if telemetry_payload is not None:
            payload["telemetry"] = telemetry_payload
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """One scan of the cache directory (see :meth:`ResultCache.scan`)."""

    entries: int = 0
    total_bytes: int = 0
    shard_dirs: int = 0
    legacy_entries: int = 0
    stale_tmp: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def resolve_byte_budget(byte_budget: Optional[int] = None) -> Optional[int]:
    """Eviction budget: explicit argument > ``REPRO_CACHE_BYTES`` > none."""
    if byte_budget is not None:
        return byte_budget
    env = os.environ.get(CACHE_BYTES_ENV, "").strip()
    if not env:
        return None
    try:
        return int(env)
    except ValueError:
        raise ValueError(
            f"{CACHE_BYTES_ENV} must be an integer, got {env!r}") from None


class ResultCache:
    """On-disk store of :class:`RunResult` keyed by run fingerprint."""

    def __init__(self, directory: Union[str, Path, None] = None,
                 byte_budget: Optional[int] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        self.byte_budget = resolve_byte_budget(byte_budget)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- layout --------------------------------------------------------

    def _entry_path(self, fingerprint: str) -> Path:
        return (self.directory / fingerprint[:SHARD_PREFIX_LEN]
                / f"{fingerprint}.json")

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for *fingerprint* lives (or would live)."""
        return self._entry_path(fingerprint)

    def _legacy_path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _iter_entries(self) -> Iterator[Path]:
        """Every entry file: sharded first, then legacy flat ones."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob(
            "?" * SHARD_PREFIX_LEN + "/*.json")
        yield from self.directory.glob("*.json")

    def _iter_tmp(self) -> Iterator[Path]:
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("?" * SHARD_PREFIX_LEN + "/*.tmp")
        yield from self.directory.glob("*.tmp")

    # -- read / write --------------------------------------------------

    def get(self, code: str, input_size: str, mode: CoherenceMode,
            config: SystemConfig,
            telemetry: Optional[TelemetrySettings] = None,
            ) -> Optional[RunResult]:
        """Return the cached run, or ``None`` on a miss.

        The sharded location is tried first, then the legacy flat one
        (entries written before sharding), so old caches stay warm.  A
        corrupted entry (bad JSON, missing fields, wrong schema) is
        removed and the lookup falls through.  Served entries get their
        mtime refreshed so eviction is LRU rather than FIFO.
        """
        fingerprint = run_fingerprint(code, input_size, mode, config,
                                      telemetry)
        for path in (self._entry_path(fingerprint),
                     self._legacy_path(fingerprint)):
            try:
                document = json.loads(path.read_text())
                if document.get("schema_version") != CACHE_SCHEMA_VERSION:
                    raise ValueError("schema version mismatch")
                result = RunResult.from_dict(document["result"])
            except FileNotFoundError:
                continue
            except (ValueError, KeyError, TypeError, OSError):
                path.unlink(missing_ok=True)
                continue
            self.hits += 1
            _METRIC_HITS.inc()
            try:
                os.utime(path)  # mark recently-used for LRU eviction
            except OSError:
                pass
            return result
        self.misses += 1
        _METRIC_MISSES.inc()
        return None

    def put(self, code: str, input_size: str, mode: CoherenceMode,
            config: SystemConfig, result: RunResult,
            telemetry: Optional[TelemetrySettings] = None) -> Path:
        """Store one finished run; returns the entry path."""
        fingerprint = run_fingerprint(code, input_size, mode, config,
                                      telemetry)
        path = self._entry_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "code": code.upper(),
            "input_size": input_size,
            "mode": mode.value,
            "result": result.to_dict(),
            # provenance: which code/interpreter produced this entry
            "manifest": run_manifest(config),
        }
        # write-then-rename so a crashed writer never leaves a torn
        # entry; the temp name is unique per (pid, sequence) so two
        # writers finishing the same fingerprint never interleave
        tmp = path.with_name(
            f"{fingerprint}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
        entry_text = json.dumps(document)
        tmp.write_text(entry_text)
        tmp.replace(path)
        _METRIC_PUTS.inc()
        _METRIC_ENTRY_BYTES.observe(len(entry_text))
        if self.byte_budget is not None:
            self.compact()
        return path

    # -- maintenance ---------------------------------------------------

    def scan(self) -> CacheStats:
        """Walk the cache directory once and report what is in it."""
        entries = 0
        total_bytes = 0
        legacy = 0
        shard_dirs = set()
        for path in self._iter_entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            total_bytes += size
            if path.parent == self.directory:
                legacy += 1
            else:
                shard_dirs.add(path.parent.name)
        stale_tmp = sum(1 for tmp in self._iter_tmp()
                        if self._tmp_is_stale(tmp))
        _METRIC_ENTRIES.set(entries)
        _METRIC_DISK_BYTES.set(total_bytes)
        return CacheStats(entries=entries, total_bytes=total_bytes,
                          shard_dirs=len(shard_dirs),
                          legacy_entries=legacy, stale_tmp=stale_tmp)

    @staticmethod
    def _tmp_is_stale(tmp: Path,
                      max_age_s: float = STALE_TMP_SECONDS) -> bool:
        try:
            return time.time() - tmp.stat().st_mtime >= max_age_s
        except OSError:
            return False

    def compact(self, byte_budget: Optional[int] = None,
                stale_tmp_s: float = STALE_TMP_SECONDS) -> int:
        """Sweep orphaned temp files and enforce the byte budget.

        Temp files older than *stale_tmp_s* are deleted (a crashed
        writer never comes back for them; a live one renames within
        milliseconds).  Then, if a budget applies (argument, else the
        constructor/``REPRO_CACHE_BYTES`` budget), entries are deleted
        oldest-mtime-first — ties broken by filename so the order is
        deterministic — until the cache fits.  Returns the number of
        entries evicted.
        """
        _METRIC_COMPACTIONS.inc()
        for tmp in self._iter_tmp():
            if self._tmp_is_stale(tmp, stale_tmp_s):
                tmp.unlink(missing_ok=True)
        budget = (byte_budget if byte_budget is not None
                  else self.byte_budget)
        if budget is None:
            return 0
        entries: List[tuple] = []
        total = 0
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, path.name, path,
                            stat.st_size))
            total += stat.st_size
        entries.sort(key=lambda item: (item[0], item[1]))
        evicted = 0
        for _mtime, _name, path, size in entries:
            if total <= budget:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        self.evictions += evicted
        if evicted:
            _METRIC_EVICTIONS.inc(evicted)
        return evicted

    def clear(self) -> int:
        """Delete every entry (and any temp file); returns entries removed."""
        removed = 0
        for entry in self._iter_entries():
            entry.unlink(missing_ok=True)
            removed += 1
        for tmp in self._iter_tmp():
            tmp.unlink(missing_ok=True)
        if self.directory.is_dir():
            for shard in self.directory.iterdir():
                if (shard.is_dir()
                        and len(shard.name) == SHARD_PREFIX_LEN):
                    try:
                        shard.rmdir()  # only succeeds when empty
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory}, hits={self.hits}, "
                f"misses={self.misses})")


def default_cache(directory: Union[str, Path, None] = None,
                  ) -> Optional[ResultCache]:
    """The cache the harness uses unless told otherwise.

    Returns ``None`` (caching disabled) when ``REPRO_NO_CACHE`` is set
    to anything truthy.
    """
    if os.environ.get(NO_CACHE_ENV, "").strip() not in ("", "0"):
        return None
    return ResultCache(directory)
