"""Content-addressed persistent cache of benchmark runs.

Every simulation is deterministic: the same (configuration, benchmark,
input size, mode) always produces the same :class:`RunResult`.  The
cache exploits that by storing finished runs as JSON under a cache
directory, keyed by a stable fingerprint of everything that influences
the outcome.  A config tweak, a benchmark change, or a bump of
:data:`CACHE_SCHEMA_VERSION` changes the fingerprint, so stale entries
are never returned — they simply stop being addressed and the point is
recomputed.

Layout: one ``<fingerprint>.json`` file per run under the cache root
(default ``.repro_cache/`` in the working directory, overridable with
``REPRO_CACHE_DIR`` or the constructor).  Corrupted or truncated entry
files are treated as misses and deleted.  ``REPRO_NO_CACHE=1``
disables the default cache entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.protocol_mode import CoherenceMode
from repro.telemetry import TelemetrySettings
from repro.telemetry.manifest import run_manifest

#: bump when RunResult serialization or simulation semantics change in a
#: way that invalidates previously stored runs
CACHE_SCHEMA_VERSION = 1

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = ".repro_cache"

#: environment overrides
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"


def config_fingerprint_payload(config: SystemConfig) -> dict:
    """The configuration contents that feed the fingerprint."""
    return dataclasses.asdict(config)


def run_fingerprint(code: str, input_size: str, mode: CoherenceMode,
                    config: SystemConfig,
                    telemetry: Optional[TelemetrySettings] = None) -> str:
    """Stable hex fingerprint of one simulation point.

    Any change to the configuration dataclasses (new fields included),
    the benchmark identity, the mode, or the cache schema version yields
    a different fingerprint.  Non-default telemetry settings join the
    payload — a sampled run carries a time-series a plain run lacks, so
    the two must never share an entry — while all-default telemetry
    contributes nothing, keeping every pre-telemetry fingerprint valid.
    """
    payload = {
        "schema_version": CACHE_SCHEMA_VERSION,
        "code": code.upper(),
        "input_size": input_size,
        "mode": mode.value,
        "config": config_fingerprint_payload(config),
    }
    if telemetry is not None:
        telemetry_payload = telemetry.fingerprint_payload()
        if telemetry_payload is not None:
            payload["telemetry"] = telemetry_payload
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """On-disk store of :class:`RunResult` keyed by run fingerprint."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, code: str, input_size: str, mode: CoherenceMode,
            config: SystemConfig,
            telemetry: Optional[TelemetrySettings] = None,
            ) -> Optional[RunResult]:
        """Return the cached run, or ``None`` on a miss.

        A corrupted entry (bad JSON, missing fields, wrong schema) is
        removed and reported as a miss.
        """
        path = self._entry_path(
            run_fingerprint(code, input_size, mode, config, telemetry))
        try:
            document = json.loads(path.read_text())
            if document.get("schema_version") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            result = RunResult.from_dict(document["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return result

    def put(self, code: str, input_size: str, mode: CoherenceMode,
            config: SystemConfig, result: RunResult,
            telemetry: Optional[TelemetrySettings] = None) -> Path:
        """Store one finished run; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fingerprint = run_fingerprint(code, input_size, mode, config,
                                      telemetry)
        path = self._entry_path(fingerprint)
        document = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "code": code.upper(),
            "input_size": input_size,
            "mode": mode.value,
            "result": result.to_dict(),
            # provenance: which code/interpreter produced this entry
            "manifest": run_manifest(config),
        }
        # write-then-rename so a crashed writer never leaves a torn entry
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document))
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory}, hits={self.hits}, "
                f"misses={self.misses})")


def default_cache(directory: Union[str, Path, None] = None,
                  ) -> Optional[ResultCache]:
    """The cache the harness uses unless told otherwise.

    Returns ``None`` (caching disabled) when ``REPRO_NO_CACHE`` is set
    to anything truthy.
    """
    if os.environ.get(NO_CACHE_ENV, "").strip() not in ("", "0"):
        return None
    return ResultCache(directory)
