"""Parallel fan-out execution of benchmark runs.

The evaluation regenerates 88 independent simulations (22 benchmarks ×
{small, big} × {CCSM, DS}); each is single-threaded and deterministic,
so the experiment layer fans them out across a
:class:`~concurrent.futures.ProcessPoolExecutor` and reassembles the
results in input order — parallel output is indistinguishable from a
serial run, just faster.

Job-count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.  With
``jobs=1`` (or when no process pool can be created — some sandboxes
forbid forking) everything runs in-process, serially, through the exact
same code path the workers use.

Results are read through / written to an optional
:class:`~repro.harness.resultcache.ResultCache` so only cache misses
are ever dispatched.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.protocol_mode import CoherenceMode
from repro.harness.resultcache import ResultCache
from repro.harness.runner import BenchmarkComparison, run_benchmark
from repro.metrics import REGISTRY
from repro.metrics import names as metric_names
from repro.telemetry import TelemetrySettings

#: environment override for the default worker count
JOBS_ENV = "REPRO_JOBS"

#: process-wide service metrics: how batches resolve their points
_METRIC_POINTS = metric_names.declare(REGISTRY,
                                      metric_names.RUNNER_POINTS)
_METRIC_BATCHES = metric_names.declare(REGISTRY,
                                       metric_names.RUNNER_BATCHES)
_METRIC_BATCH_SECONDS = metric_names.declare(
    REGISTRY, metric_names.RUNNER_BATCH_SECONDS)


@dataclass
class RunPoint:
    """One simulation to execute: (benchmark, input size, mode, config).

    ``telemetry`` requests interval sampling for the point (the
    time-series rides back inside the :class:`RunResult`, so it survives
    worker-process boundaries and the result cache).  Event *tracing*
    is a serial-consumer concern — the trace lives in the worker's
    process-global tracer and would be lost across a pool boundary — so
    traced runs should go through
    :func:`~repro.harness.runner.run_benchmark` directly.
    """

    code: str
    input_size: str
    mode: CoherenceMode
    config: Optional[SystemConfig] = None
    telemetry: Optional[TelemetrySettings] = None


class WorkerError(RuntimeError):
    """A worker failed; carries the failing point for diagnosis."""

    def __init__(self, point: RunPoint, cause: BaseException) -> None:
        super().__init__(
            f"benchmark run {point.code}/{point.input_size} "
            f"[{point.mode.value}] failed: {cause!r}")
        self.point = point
        self.cause = cause


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > cpu count.

    On a single-hardware-thread host the answer is always 1: a process
    pool there buys no parallelism and pays spawn + pickle overhead for
    every point (the ``speedup_parallel_vs_serial: 0.91`` regression in
    the benchmark record), so even an explicit ``jobs > 1`` is clamped
    and the batch runs in-process.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {env!r}") from None
        else:
            jobs = os.cpu_count() or 1
    jobs = max(1, jobs)
    if jobs > 1 and (os.cpu_count() or 1) == 1:
        jobs = 1
    return jobs


def _execute_point(point: RunPoint) -> RunResult:
    """Run one point; the function workers import and call."""
    return run_benchmark(point.code, point.input_size, point.mode,
                         point.config, telemetry=point.telemetry)


class ParallelRunner:
    """Dispatches :class:`RunPoint` batches, cache-aware, order-stable."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache

    def run_points(self, points: Sequence[RunPoint],
                   progress: Optional[Callable[[RunPoint], None]] = None,
                   ) -> List[RunResult]:
        """Execute every point; results come back in input order.

        Cached points are served without dispatch; the rest fan out
        across the pool (or run serially, see the module docstring).  A
        crashed worker surfaces as :class:`WorkerError` naming the
        failing point.
        """
        start = time.perf_counter()
        results: List[Optional[RunResult]] = [None] * len(points)
        pending: List[Tuple[int, RunPoint]] = []
        for index, point in enumerate(points):
            cached = self._cache_get(point)
            if cached is not None:
                results[index] = cached
                _METRIC_POINTS.labels(source="cache").inc()
                if progress is not None:
                    progress(point)
            else:
                pending.append((index, point))

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(pending, results, progress)
            else:
                self._run_pool(pending, results, progress)
        _METRIC_BATCHES.inc()
        _METRIC_BATCH_SECONDS.observe(time.perf_counter() - start)
        return results  # type: ignore[return-value]

    def compare_many(self, codes: Sequence[str], input_size: str,
                     config: Optional[SystemConfig] = None,
                     ds_mode: CoherenceMode = CoherenceMode.DIRECT_STORE,
                     progress: Optional[Callable[[str], None]] = None,
                     telemetry: Optional[TelemetrySettings] = None,
                     ) -> List[BenchmarkComparison]:
        """CCSM-vs-DS comparisons for many benchmarks in one fan-out."""
        base_config = config or SystemConfig(track_values=False)
        points = []
        for code in codes:
            points.append(RunPoint(code, input_size, CoherenceMode.CCSM,
                                   base_config, telemetry))
            points.append(RunPoint(code, input_size, ds_mode, base_config,
                                   telemetry))
        seen = set()

        def _point_progress(point: RunPoint) -> None:
            if progress is not None and point.code not in seen:
                seen.add(point.code)
                progress(point.code)

        results = self.run_points(points, progress=_point_progress)
        return [BenchmarkComparison(code=code.upper(),
                                    input_size=input_size,
                                    ccsm=results[2 * i],
                                    direct_store=results[2 * i + 1])
                for i, code in enumerate(codes)]

    # ------------------------------------------------------------------

    def _cache_get(self, point: RunPoint) -> Optional[RunResult]:
        if self.cache is None:
            return None
        config = point.config or SystemConfig(track_values=False)
        return self.cache.get(point.code, point.input_size, point.mode,
                              config, telemetry=point.telemetry)

    def _cache_put(self, point: RunPoint, result: RunResult) -> None:
        if self.cache is None:
            return
        config = point.config or SystemConfig(track_values=False)
        self.cache.put(point.code, point.input_size, point.mode, config,
                       result, telemetry=point.telemetry)

    def _finish(self, index: int, point: RunPoint, result: RunResult,
                results: List[Optional[RunResult]],
                progress: Optional[Callable[[RunPoint], None]],
                source: str = "serial") -> None:
        results[index] = result
        self._cache_put(point, result)
        _METRIC_POINTS.labels(source=source).inc()
        if progress is not None:
            progress(point)

    def _run_serial(self, pending: Sequence[Tuple[int, RunPoint]],
                    results: List[Optional[RunResult]],
                    progress: Optional[Callable[[RunPoint], None]]) -> None:
        for index, point in pending:
            try:
                result = _execute_point(point)
            except Exception as exc:
                raise WorkerError(point, exc) from exc
            self._finish(index, point, result, results, progress)

    def _run_pool(self, pending: Sequence[Tuple[int, RunPoint]],
                  results: List[Optional[RunResult]],
                  progress: Optional[Callable[[RunPoint], None]]) -> None:
        try:
            from concurrent.futures import ProcessPoolExecutor
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)))
        except (ImportError, NotImplementedError, OSError, PermissionError):
            # no usable process pool here (restricted sandbox); degrade
            self._run_serial(pending, results, progress)
            return
        from concurrent.futures import BrokenExecutor
        futures: List[Tuple[int, RunPoint, "Future[RunResult]"]] = []
        try:
            with executor:
                for index, point in pending:
                    futures.append((index, point,
                                    executor.submit(_execute_point, point)))
                for index, point, future in futures:
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        # the pool died mid-run (a worker was killed);
                        # not this point's fault — re-dispatch below
                        raise
                    except Exception as exc:
                        raise WorkerError(point, exc) from exc
                    self._finish(index, point, result, results, progress,
                                 source="pool")
        except WorkerError:
            raise
        except (OSError, RuntimeError):
            # the pool itself broke (fork refused at submit time, a
            # worker killed mid-run, ...); keep whatever the pool did
            # finish, then fall back to in-process execution for only
            # the points that never produced a result
            for index, point, future in futures:
                if (results[index] is not None or not future.done()
                        or future.cancelled()):
                    continue
                try:
                    result = future.result()
                except Exception:
                    continue  # re-dispatched below; runs are idempotent
                self._finish(index, point, result, results, progress,
                             source="pool")
            unfinished = [(index, point) for index, point in pending
                          if results[index] is None]
            if not unfinished:
                raise
            self._run_serial(unfinished, results, progress)


def compare_many(codes: Sequence[str], input_size: str,
                 config: Optional[SystemConfig] = None,
                 ds_mode: CoherenceMode = CoherenceMode.DIRECT_STORE,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 telemetry: Optional[TelemetrySettings] = None,
                 ) -> List[BenchmarkComparison]:
    """Module-level convenience wrapper over :class:`ParallelRunner`."""
    runner = ParallelRunner(jobs=jobs, cache=cache)
    return runner.compare_many(codes, input_size, config=config,
                               ds_mode=ds_mode, progress=progress,
                               telemetry=telemetry)
