"""Reproduction of the paper's figures as data-producing functions.

* :func:`figure4` — direct-store speedup over CCSM per benchmark (Fig. 4),
  plus the geometric mean of non-zero speedups the paper reports
  (7.8% small / 5.7% big);
* :func:`figure5` — GPU L2 miss rate under both protocols (Fig. 5), plus
  the miss-rate geometric means (9.3%→7.3% small, 12.5%→11.1% big).

The paper treats a benchmark as "zero speedup" when the bars round to
zero; we use :data:`ZERO_THRESHOLD` (0.5%) for the same filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import SystemConfig
from repro.harness.parallel import compare_many
from repro.harness.resultcache import ResultCache
from repro.harness.runner import BenchmarkComparison
from repro.utils.statistics import geometric_mean
from repro.workloads.suite import benchmark_codes

#: speedups below this are "zero" for the geomean filter (paper: bars
#: that render as zero)
ZERO_THRESHOLD = 0.005

#: the paper's zero-speedup set (§IV-C): "ignoring those benchmarks with
#: zero percent speedup for both small and big inputs"
PAPER_ZERO_SET = ("GA", "KM", "LV", "PT", "SR", "ST", "MS")

#: the paper's >10% set for small inputs
PAPER_BIG_WINNERS = ("NN", "BL", "VA", "MM", "MT")


@dataclass
class Fig4Row:
    """One bar of Fig. 4."""

    code: str
    speedup: float

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0


@dataclass
class Fig5Row:
    """One bar pair of Fig. 5."""

    code: str
    ccsm_miss_rate: float
    ds_miss_rate: float


def _comparisons(input_size: str, config: Optional[SystemConfig],
                 codes: Optional[List[str]],
                 progress: Optional[Callable[[str], None]],
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 ) -> List[BenchmarkComparison]:
    return compare_many(codes or benchmark_codes(), input_size,
                        config=config, jobs=jobs, cache=cache,
                        progress=progress)


def figure4(input_size: str = "small",
            config: Optional[SystemConfig] = None,
            codes: Optional[List[str]] = None,
            progress: Optional[Callable[[str], None]] = None,
            jobs: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            ) -> List[Fig4Row]:
    """Regenerate Fig. 4 (top for small, bottom for big inputs)."""
    return [Fig4Row(comparison.code, comparison.speedup)
            for comparison in _comparisons(input_size, config, codes,
                                           progress, jobs, cache)]


def figure5(input_size: str = "small",
            config: Optional[SystemConfig] = None,
            codes: Optional[List[str]] = None,
            progress: Optional[Callable[[str], None]] = None,
            jobs: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            ) -> List[Fig5Row]:
    """Regenerate Fig. 5 (GPU L2 miss rates, CCSM vs direct store)."""
    return [Fig5Row(comparison.code, comparison.ccsm_miss_rate,
                    comparison.ds_miss_rate)
            for comparison in _comparisons(input_size, config, codes,
                                           progress, jobs, cache)]


def geomean_nonzero_speedup(rows: List[Fig4Row]) -> float:
    """The rightmost bar of Fig. 4: geomean of the non-zero speedups."""
    nonzero = [row.speedup for row in rows
               if row.speedup - 1.0 > ZERO_THRESHOLD]
    if not nonzero:
        return 1.0
    return geometric_mean(nonzero)


def geomean_miss_rates(rows: List[Fig5Row]) -> tuple:
    """The rightmost bars of Fig. 5: (ccsm geomean, ds geomean).

    Zero-rate benchmarks are excluded, as in the paper ("ignoring those
    benchmarks with zero L2 cache miss rate").
    """
    ccsm = [row.ccsm_miss_rate for row in rows if row.ccsm_miss_rate > 0]
    ds = [row.ds_miss_rate for row in rows if row.ds_miss_rate > 0]
    return (geometric_mean(ccsm) if ccsm else 0.0,
            geometric_mean(ds) if ds else 0.0)
