"""Plain-text reporting: aligned tables, bar charts, phase summaries."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.export import sparkline, timeline_summary  # noqa: F401
from repro.telemetry.sampler import TimeSeries


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = [[str(cell) for cell in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index])
                  for index, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_bar_chart(items: Iterable[Tuple[str, float]], width: int = 50,
                    unit: str = "") -> str:
    """Render labelled horizontal bars (the Fig. 4 / Fig. 5 look)."""
    items = list(items)
    if not items:
        return "(no data)"
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    lines = []
    for label, value in items:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def phase_summary_line(phases: Sequence[Dict]) -> str:
    """One line of per-phase telemetry for a run.

    Each phase shows its simulated duration plus, when non-zero, the
    stores forwarded over the dedicated network and the GPU-L2 hits on
    pushed (never demand-missed) lines — the push-vs-pull story at a
    glance: forwards happen in the producer phase, first-touch hits in
    the consumer phase.
    """
    if not phases:
        return "phases: (not recorded)"
    parts = []
    for phase in phases:
        ticks = phase.get("end", 0) - phase.get("start", 0)
        extras = []
        if phase.get("forwarded_stores"):
            extras.append(f"fwd {phase['forwarded_stores']:,}")
        if phase.get("gpu_l2_first_touch_hits"):
            extras.append(f"ft-hits {phase['gpu_l2_first_touch_hits']:,}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        parts.append(f"{phase['name']} {ticks:,}t{suffix}")
    return "phases: " + " | ".join(parts)


def timeseries_panel(timeseries: Optional[TimeSeries],
                     names: Optional[Sequence[str]] = None,
                     width: int = 40) -> str:
    """Sparkline panel over selected sampler columns (all by default)."""
    if timeseries is None or not len(timeseries):
        return "time-series: (no samples)"
    selected = (list(names) if names is not None
                else sorted(timeseries.series))
    lines = [f"time-series ({len(timeseries)} samples @ "
             f"{timeseries.interval:,}-tick interval):"]
    for name in selected:
        values = timeseries.series.get(name)
        if values is None:
            continue
        peak = max(values) if values else 0.0
        peak_text = (f"{peak:,.0f}" if peak == int(peak)
                     else f"{peak:,.3f}")
        lines.append(
            f"  {name:<26} |{sparkline(values, width)}| peak {peak_text}")
    return "\n".join(lines)
