"""Plain-text reporting: aligned tables and ASCII bar charts."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = [[str(cell) for cell in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index])
                  for index, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_bar_chart(items: Iterable[Tuple[str, float]], width: int = 50,
                    unit: str = "") -> str:
    """Render labelled horizontal bars (the Fig. 4 / Fig. 5 look)."""
    items = list(items)
    if not items:
        return "(no data)"
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    lines = []
    for label, value in items:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)
