"""Benchmark runners: one (workload, mode) point, or a mode comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.protocol_mode import CoherenceMode
from repro.core.system import IntegratedSystem
from repro.telemetry import TelemetrySettings
from repro.workloads.suite import get_workload


def run_benchmark(code: str, input_size: str, mode: CoherenceMode,
                  config: Optional[SystemConfig] = None,
                  telemetry: Optional[TelemetrySettings] = None
                  ) -> RunResult:
    """Run one Table II benchmark once under *mode* and return metrics.

    A fresh :class:`IntegratedSystem` is built per call (systems are
    single-use); value tracking defaults off for speed — benchmark
    correctness is covered by the test suite.  *telemetry* requests
    tracing and/or interval sampling for this run (sampled time-series
    come back in ``RunResult.timeseries``; trace events land in the
    process-global ``TRACER``).
    """
    config = config or SystemConfig(track_values=False)
    system = IntegratedSystem(config, mode, telemetry=telemetry)
    return system.run(get_workload(code, input_size))


@dataclass
class BenchmarkComparison:
    """CCSM-vs-direct-store results for one benchmark."""

    code: str
    input_size: str
    ccsm: RunResult
    direct_store: RunResult

    @property
    def speedup(self) -> float:
        """Fig. 4's metric: CCSM ticks / direct-store ticks."""
        return self.direct_store.speedup_over(self.ccsm)

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0

    @property
    def ccsm_miss_rate(self) -> float:
        return self.ccsm.gpu_l2_miss_rate

    @property
    def ds_miss_rate(self) -> float:
        return self.direct_store.gpu_l2_miss_rate


def compare_modes(code: str, input_size: str,
                  config: Optional[SystemConfig] = None,
                  ds_mode: CoherenceMode = CoherenceMode.DIRECT_STORE,
                  telemetry: Optional[TelemetrySettings] = None,
                  ) -> BenchmarkComparison:
    """Run one benchmark under CCSM and under direct store."""
    base_config = config or SystemConfig(track_values=False)
    return BenchmarkComparison(
        code=code.upper(),
        input_size=input_size,
        ccsm=run_benchmark(code, input_size, CoherenceMode.CCSM,
                           base_config, telemetry=telemetry),
        direct_store=run_benchmark(code, input_size, ds_mode, base_config,
                                   telemetry=telemetry),
    )


def compare_all_modes(code: str, input_size: str,
                      config: Optional[SystemConfig] = None,
                      telemetry: Optional[TelemetrySettings] = None,
                      ) -> Dict[CoherenceMode, RunResult]:
    """Run one benchmark under every coherence mode."""
    return {mode: run_benchmark(code, input_size, mode, config,
                                telemetry=telemetry)
            for mode in CoherenceMode}
