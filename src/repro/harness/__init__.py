"""Experiment harness: runners, figure/table reproduction, reporting."""

from repro.harness.reporting import ascii_bar_chart, format_table
from repro.harness.runner import BenchmarkComparison, compare_modes, run_benchmark
from repro.harness.experiments import (
    Fig4Row,
    Fig5Row,
    figure4,
    figure5,
    geomean_nonzero_speedup,
)
from repro.harness.parallel import (
    ParallelRunner,
    RunPoint,
    WorkerError,
    compare_many,
    resolve_jobs,
)
from repro.harness.persist import load_results, save_comparisons
from repro.harness.resultcache import ResultCache, default_cache, run_fingerprint
from repro.harness.sweep import sweep_config

__all__ = [
    "ascii_bar_chart",
    "format_table",
    "BenchmarkComparison",
    "compare_modes",
    "run_benchmark",
    "Fig4Row",
    "Fig5Row",
    "figure4",
    "figure5",
    "geomean_nonzero_speedup",
    "ParallelRunner",
    "RunPoint",
    "WorkerError",
    "compare_many",
    "resolve_jobs",
    "ResultCache",
    "default_cache",
    "run_fingerprint",
    "sweep_config",
    "load_results",
    "save_comparisons",
]
