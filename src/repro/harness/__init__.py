"""Experiment harness: runners, figure/table reproduction, reporting."""

from repro.harness.reporting import ascii_bar_chart, format_table
from repro.harness.runner import BenchmarkComparison, compare_modes, run_benchmark
from repro.harness.experiments import (
    Fig4Row,
    Fig5Row,
    figure4,
    figure5,
    geomean_nonzero_speedup,
)
from repro.harness.persist import load_results, save_comparisons
from repro.harness.sweep import sweep_config

__all__ = [
    "ascii_bar_chart",
    "format_table",
    "BenchmarkComparison",
    "compare_modes",
    "run_benchmark",
    "Fig4Row",
    "Fig5Row",
    "figure4",
    "figure5",
    "geomean_nonzero_speedup",
    "sweep_config",
    "load_results",
    "save_comparisons",
]
