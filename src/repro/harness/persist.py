"""Persisting experiment results as JSON.

The figure benches can dump their data points for external plotting or
regression tracking; :func:`save_comparisons` / :func:`load_results`
define the stable on-disk schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.harness.runner import BenchmarkComparison
from repro.telemetry.manifest import run_manifest

SCHEMA_VERSION = 1


def comparison_to_dict(comparison: BenchmarkComparison) -> dict:
    """Flatten one comparison into JSON-friendly primitives."""
    return {
        "code": comparison.code,
        "input_size": comparison.input_size,
        "speedup": comparison.speedup,
        "ccsm": {
            "total_ticks": comparison.ccsm.total_ticks,
            "gpu_l2_accesses": comparison.ccsm.gpu_l2.accesses,
            "gpu_l2_misses": comparison.ccsm.gpu_l2.misses,
            "gpu_l2_compulsory": comparison.ccsm.gpu_l2.compulsory_misses,
            "gpu_l2_miss_rate": comparison.ccsm_miss_rate,
            "network_messages": comparison.ccsm.network_messages,
        },
        "direct_store": {
            "total_ticks": comparison.direct_store.total_ticks,
            "gpu_l2_accesses": comparison.direct_store.gpu_l2.accesses,
            "gpu_l2_misses": comparison.direct_store.gpu_l2.misses,
            "gpu_l2_compulsory":
                comparison.direct_store.gpu_l2.compulsory_misses,
            "gpu_l2_miss_rate": comparison.ds_miss_rate,
            "network_messages": comparison.direct_store.network_messages,
            "forwarded_stores":
                comparison.direct_store.ds_forwarded_stores,
        },
    }


def save_comparisons(path: Union[str, Path], label: str,
                     comparisons: Iterable[BenchmarkComparison]) -> Path:
    """Write a labelled result set; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        # additive key: readers that predate it ignore it, and the
        # schema version can stay put
        "manifest": run_manifest(),
        "results": [comparison_to_dict(c) for c in comparisons],
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_results(path: Union[str, Path]) -> List[dict]:
    """Load a result set written by :func:`save_comparisons`."""
    document = json.loads(Path(path).read_text())
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version "
            f"{document.get('schema_version')!r} not supported")
    return document["results"]
