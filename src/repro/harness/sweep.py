"""Parameter sweeps for ablation studies."""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence)

from repro.core.config import SystemConfig
from repro.core.protocol_mode import CoherenceMode
from repro.harness.parallel import ParallelRunner, RunPoint
from repro.harness.resultcache import ResultCache
from repro.harness.runner import BenchmarkComparison


def expand_grid(axes: Mapping[str, Sequence[object]]
                ) -> List[Dict[str, object]]:
    """Ordered cartesian expansion of *axes* into per-point dicts.

    Iteration order is fully deterministic: axes vary in *insertion*
    order (the first axis is the slowest-moving), and each axis walks
    its values in the given sequence order — no dependence on hash or
    dict-internal ordering beyond the caller's own insertion order.

    Edge cases follow the cartesian product: no axes at all yields one
    empty point (``[{}]``), while any axis with an empty value list
    yields an empty sweep (``[]``).  Duplicate values are preserved —
    deduplication is the caller's concern.
    """
    names = list(axes)
    return [dict(zip(names, combo))
            for combo in itertools.product(*(list(axes[name])
                                             for name in names))]


@dataclass
class SweepPoint:
    """One configuration point of an ablation sweep."""

    label: str
    value: object
    comparison: BenchmarkComparison

    @property
    def speedup(self) -> float:
        return self.comparison.speedup


def sweep_config(code: str, input_size: str, values: Iterable[object],
                 apply: Callable[[SystemConfig, object], None],
                 label: str = "value",
                 ds_mode: CoherenceMode = CoherenceMode.DIRECT_STORE,
                 config: Optional[SystemConfig] = None,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 ) -> List[SweepPoint]:
    """Re-run a CCSM-vs-DS comparison across configuration *values*.

    *apply(config, value)* mutates a per-point deep copy of *config*
    (default: a fresh ``SystemConfig(track_values=False)``), e.g.
    ``lambda cfg, v: setattr(cfg.network, "ds_latency_cycles", v)``.
    All ``2 × len(values)`` runs fan out through one
    :class:`ParallelRunner` batch.
    """
    base = config or SystemConfig(track_values=False)
    values = list(values)
    points: List[RunPoint] = []
    for value in values:
        point_config = copy.deepcopy(base)
        apply(point_config, value)
        points.append(RunPoint(code, input_size, CoherenceMode.CCSM,
                               point_config))
        points.append(RunPoint(code, input_size, ds_mode, point_config))
    results = ParallelRunner(jobs=jobs, cache=cache).run_points(points)
    return [SweepPoint(
        label=f"{label}={value}",
        value=value,
        comparison=BenchmarkComparison(
            code=code.upper(), input_size=input_size,
            ccsm=results[2 * i], direct_store=results[2 * i + 1]))
        for i, value in enumerate(values)]
