"""Parameter sweeps for ablation studies."""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterable, List

from repro.core.config import SystemConfig
from repro.core.protocol_mode import CoherenceMode
from repro.harness.runner import BenchmarkComparison, compare_modes


@dataclass
class SweepPoint:
    """One configuration point of an ablation sweep."""

    label: str
    value: object
    comparison: BenchmarkComparison

    @property
    def speedup(self) -> float:
        return self.comparison.speedup


def sweep_config(code: str, input_size: str, values: Iterable[object],
                 apply: Callable[[SystemConfig, object], None],
                 label: str = "value",
                 ds_mode: CoherenceMode = CoherenceMode.DIRECT_STORE,
                 ) -> List[SweepPoint]:
    """Re-run a CCSM-vs-DS comparison across configuration *values*.

    *apply(config, value)* mutates a fresh deep-copied config for each
    point, e.g. ``lambda cfg, v: setattr(cfg.network, "ds_latency_cycles", v)``.
    """
    points = []
    for value in values:
        config = copy.deepcopy(SystemConfig(track_values=False))
        apply(config, value)
        comparison = compare_modes(code, input_size, config,
                                   ds_mode=ds_mode)
        points.append(SweepPoint(f"{label}={value}", value, comparison))
    return points
